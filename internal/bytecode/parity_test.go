package bytecode

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// runWalker executes src on the tree-walker.
func runWalker(t *testing.T, src, stdin string, maxSteps int64) (out string, code int, err error, sink interp.CountingSink, steps int64) {
	t.Helper()
	prog, perr := minic.ParseAndCheck(src)
	if perr != nil {
		t.Fatalf("parse: %v", perr)
	}
	var buf bytes.Buffer
	m := interp.New(prog, interp.Options{
		Stdin:    strings.NewReader(stdin),
		Stdout:   &buf,
		Cost:     &sink,
		MaxSteps: maxSteps,
	})
	code, err = m.Run()
	return buf.String(), code, err, sink, m.Steps()
}

// runVM compiles src to bytecode and executes it on the VM.
func runVM(t *testing.T, src, stdin string, maxSteps int64) (out string, code int, err error, sink interp.CountingSink, steps int64, prog *Program) {
	t.Helper()
	mp, perr := minic.ParseAndCheck(src)
	if perr != nil {
		t.Fatalf("parse: %v", perr)
	}
	prog = Compile(mp)
	var buf bytes.Buffer
	m := interp.New(mp, interp.Options{
		Stdin:    strings.NewReader(stdin),
		Stdout:   &buf,
		Cost:     &sink,
		MaxSteps: maxSteps,
	})
	vm := NewVM(m, prog)
	code, err = vm.Run()
	return buf.String(), code, err, sink, m.Steps(), prog
}

// checkParity asserts byte-identical output, exit status, error text, and
// exact cost/step totals between walker and VM, and that no function fell
// back to the tree-walker.
func checkParity(t *testing.T, src string) {
	t.Helper()
	checkParityIO(t, src, "", true)
}

func checkParityIO(t *testing.T, src, stdin string, wantCompiled bool) {
	t.Helper()
	wOut, wCode, wErr, wSink, wSteps := runWalker(t, src, stdin, 0)
	vOut, vCode, vErr, vSink, vSteps, prog := runVM(t, src, stdin, 0)

	if wantCompiled {
		for _, fn := range prog.Fns {
			if fn.Fallback {
				t.Errorf("function %s fell back to the walker: %s", fn.Name, fn.Why)
			}
		}
	}
	if wOut != vOut {
		t.Fatalf("output mismatch:\nwalker: %q\nvm:     %q", wOut, vOut)
	}
	if wCode != vCode {
		t.Fatalf("exit code mismatch: walker %d, vm %d", wCode, vCode)
	}
	if (wErr == nil) != (vErr == nil) || (wErr != nil && wErr.Error() != vErr.Error()) {
		t.Fatalf("error mismatch:\nwalker: %v\nvm:     %v", wErr, vErr)
	}
	if wErr != nil {
		// Erroring runs only guarantee identical observable output and
		// error text (charge batching may differ at the abort point).
		return
	}
	if wSteps != vSteps {
		t.Fatalf("step count mismatch: walker %d, vm %d", wSteps, vSteps)
	}
	if wSink != vSink {
		t.Fatalf("cost totals mismatch:\nwalker: %+v\nvm:     %+v", wSink, vSink)
	}
}

func TestParityArithmetic(t *testing.T) {
	checkParity(t, `
int main() {
	int a = 6;
	int b = 7;
	int c = a * b + a - b;
	int d = c / 3;
	int e = c % 5;
	long big = 1;
	big = big << 40;
	printf("%d %d %d %ld\n", c, d, e, big);
	printf("%d %d %d\n", a & b, a | b, a ^ b);
	printf("%d %d\n", big >> 38, -a);
	printf("%d %d %d\n", !a, !0, ~a);
	return c;
}`)
}

func TestParityFloats(t *testing.T) {
	checkParity(t, `
int main() {
	double x = 1.5;
	double y = 2.25;
	float f = 0.5;
	double z = x * y + f;
	printf("%f %f\n", z, x / y);
	printf("%d %d %d\n", x < y, x >= y, z != 0.0);
	printf("%f\n", -z);
	int i = 3;
	printf("%f\n", x + i);
	return 0;
}`)
}

func TestParityControlFlow(t *testing.T) {
	checkParity(t, `
int main() {
	int sum = 0;
	int i;
	for (i = 0; i < 10; i++) {
		if (i % 2 == 0)
			sum += i;
		else
			sum -= 1;
	}
	int j = 0;
	while (j < 5) {
		sum = sum + j;
		j++;
		if (j == 3)
			continue;
		if (j == 4)
			break;
	}
	printf("%d %d %d\n", sum, i, j);
	return 0;
}`)
}

func TestParityShortCircuit(t *testing.T) {
	checkParity(t, `
int noisy(int v) {
	printf("eval %d\n", v);
	return v;
}
int main() {
	int a = noisy(1) && noisy(0);
	int b = noisy(0) && noisy(5);
	int c = noisy(0) || noisy(2);
	int d = noisy(3) || noisy(4);
	printf("%d %d %d %d\n", a, b, c, d);
	int e = (a || b) ? noisy(7) : noisy(8);
	int f = a ? noisy(9) : noisy(10);
	printf("%d %d\n", e, f);
	return 0;
}`)
}

func TestParityCallsAndRecursion(t *testing.T) {
	checkParity(t, `
int fib(int n) {
	if (n < 2)
		return n;
	return fib(n - 1) + fib(n - 2);
}
int twice(int x) { return x + x; }
int main() {
	printf("%d %d\n", fib(12), twice(fib(5)));
	return 0;
}`)
}

func TestParityArraysAndPointers(t *testing.T) {
	checkParity(t, `
int g[4];
int sumArr(int *p, int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++)
		s += p[i];
	return s;
}
int main() {
	int a[10];
	int i;
	for (i = 0; i < 10; i++)
		a[i] = i * i;
	int *p = &a[2];
	p[1] = 100;
	*p = 50;
	(*p)++;
	p[1] += 7;
	g[0] = 1;
	g[3] = 4;
	printf("%d %d %d\n", sumArr(a, 10), sumArr(g, 4), *p);
	int m[3][4];
	m[1][2] = 42;
	m[2][3] = m[1][2] + 1;
	printf("%d %d\n", m[1][2], m[2][3]);
	return 0;
}`)
}

func TestParityGlobalsAndStrings(t *testing.T) {
	checkParity(t, `
int counter = 3;
double scale = 1.5;
char *msg;
int bump() {
	counter++;
	return counter;
}
int main() {
	msg = "hello";
	printf("%s %d %d %f\n", msg, bump(), bump(), scale);
	printf("%c\n", msg[1]);
	return counter;
}`)
}

func TestParityUntrackedLocals(t *testing.T) {
	// Address-taken locals are demoted to objects; ++/-- and compound
	// assignment on them take the opaque-effect path.
	checkParity(t, `
int main() {
	int x = 5;
	int *px = &x;
	x++;
	x += 10;
	--x;
	int old = x--;
	*px += 2;
	printf("%d %d %d\n", x, old, *px);
	double d = 1.0;
	double *pd = &d;
	d += 0.5;
	printf("%f %f\n", d, *pd);
	char buf[4];
	buf[0] = 65;
	buf[0]++;
	buf[1] = buf[0] + 1;
	printf("%c%c\n", buf[0], buf[1]);
	return 0;
}`)
}

func TestParityConversions(t *testing.T) {
	checkParity(t, `
int main() {
	char c = 300;
	int i = 1073741824;
	i = i * 4;
	float f = 0.1;
	double d = f;
	long l = d * 100;
	printf("%d %d %f %ld\n", c, i, d, l);
	int t = (int)(3.99);
	char t2 = (char)(65.5);
	printf("%d %d\n", t, t2);
	return 0;
}`)
}

func TestParityExit(t *testing.T) {
	checkParity(t, `
int helper() {
	printf("before\n");
	exit(7);
	printf("after\n");
	return 0;
}
int main() {
	helper();
	printf("unreached\n");
	return 0;
}`)
}

func TestParityStdinRecords(t *testing.T) {
	checkParityIO(t, `
int main() {
	char line[256];
	int total = 0;
	while (getRecord(line) > 0) {
		total += atoi(line);
	}
	printf("%d\n", total);
	return 0;
}`, "5\n10\n27\n", false)
}

func TestParityRuntimeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"div-zero", `
int main() {
	int z = 0;
	printf("start\n");
	int x = 10 / z;
	printf("%d\n", x);
	return 0;
}`},
		{"mod-zero", `
int main() {
	int z = 0;
	int x = 10 % z;
	return x;
}`},
		{"oob-load", `
int main() {
	int a[3];
	int i = 7;
	printf("start\n");
	return a[i];
}`},
		{"oob-store", `
int main() {
	int a[3];
	int i = -1;
	a[i] = 5;
	return 0;
}`},
		{"null-deref", `
int main() {
	int *p;
	return *p;
}`},
		{"null-store", `
int main() {
	int *p;
	*p = 3;
	return 0;
}`},
		{"float-div-zero", `
int main() {
	double z = 0.0;
	double x = 1.0 / z;
	printf("%f\n", x);
	return 0;
}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkParityIO(t, tc.src, "", false)
		})
	}
}

func TestParityStepBudget(t *testing.T) {
	src := `
int main() {
	int i = 0;
	while (1) {
		i++;
		if (i % 1000 == 0)
			printf("%d\n", i);
	}
	return 0;
}`
	wOut, _, wErr, _, _ := runWalker(t, src, "", 5000)
	vOut, _, vErr, _, _, _ := runVM(t, src, "", 5000)
	if wErr == nil || vErr == nil {
		t.Fatalf("expected step budget exhaustion, walker %v vm %v", wErr, vErr)
	}
	if wErr.Error() != vErr.Error() {
		t.Fatalf("error mismatch: %v vs %v", wErr, vErr)
	}
	if wOut != vOut {
		t.Fatalf("output mismatch under budget:\nwalker: %q\nvm:     %q", wOut, vOut)
	}
}

// TestParityOptimized runs the same sources through the AST optimizer
// first: the bytecode compiler consumes optimizer output in production.
func TestParityOptimized(t *testing.T) {
	srcs := []string{`
int main() {
	int sum = 0;
	int i;
	for (i = 0; i < 100; i++)
		sum += i * 2;
	printf("%d\n", sum);
	return 0;
}`, `
double sq(double x) { return x * x; }
int main() {
	double acc = 0.0;
	int i;
	for (i = 1; i <= 50; i++)
		acc += sq(i) / (i + 1);
	printf("%f\n", acc);
	return 0;
}`}
	for i, src := range srcs {
		wp, err := minic.ParseAndCheck(src)
		if err != nil {
			t.Fatal(err)
		}
		ir.OptimizeProgram(wp)
		var wBuf bytes.Buffer
		var wSink interp.CountingSink
		wm := interp.New(wp, interp.Options{Stdout: &wBuf, Cost: &wSink})
		wCode, wErr := wm.Run()

		vp, err := minic.ParseAndCheck(src)
		if err != nil {
			t.Fatal(err)
		}
		ir.OptimizeProgram(vp)
		bc := Compile(vp)
		var vBuf bytes.Buffer
		var vSink interp.CountingSink
		vm2 := interp.New(vp, interp.Options{Stdout: &vBuf, Cost: &vSink})
		vCode, vErr := NewVM(vm2, bc).Run()

		if wBuf.String() != vBuf.String() || wCode != vCode || (wErr == nil) != (vErr == nil) {
			t.Fatalf("case %d mismatch: %q/%d/%v vs %q/%d/%v", i, wBuf.String(), wCode, wErr, vBuf.String(), vCode, vErr)
		}
		if wSink != vSink {
			t.Fatalf("case %d cost mismatch:\nwalker: %+v\nvm:     %+v", i, wSink, vSink)
		}
		if wm.Steps() != vm2.Steps() {
			t.Fatalf("case %d steps mismatch: %d vs %d", i, wm.Steps(), vm2.Steps())
		}
	}
}

// TestFragmentParity compiles a loop body + condition as kernel fragments
// and compares against ExecIn/EvalIn on the same machine state.
func TestFragmentParity(t *testing.T) {
	src := `
int main() {
	int i;
	int n;
	int sum;
	while (i < n) {
		sum = sum + i * i;
		i = i + 1;
	}
	return 0;
}`
	prog, err := minic.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	var loop *minic.While
	for _, s := range prog.Func("main").Body.Stmts {
		if w, ok := s.(*minic.While); ok {
			loop = w
		}
	}
	if loop == nil {
		t.Fatal("no while loop found")
	}

	condProg := CompileFragmentExpr(loop.Cond)
	bodyProg := CompileFragmentStmt(loop.Body)
	if condProg == nil || bodyProg == nil {
		t.Fatalf("fragment compile declined: cond=%v body=%v", condProg != nil, bodyProg != nil)
	}

	run := func(useVM bool) (int64, interp.CountingSink, int64) {
		var sink interp.CountingSink
		m := interp.New(prog, interp.Options{Cost: &sink})
		fr := m.NewFrame()
		intT := loop.Cond.(*minic.Binary).L.Type()
		bind := func(name string, v int64) *interp.Object {
			var sym *minic.Symbol
			minicWalk(prog, func(id *minic.Ident) {
				if id.Name == name {
					sym = id.Sym
				}
			})
			obj := interp.NewObject(name, intT, 1, interp.SpaceRAM)
			obj.Cells[0] = interp.IntVal(v)
			fr.Bind(sym, obj)
			return obj
		}
		bind("i", 0)
		bind("n", 25)
		sumObj := bind("sum", 0)

		if useVM {
			cond, err := NewFragmentVM(m, condProg, fr.Object)
			if err != nil {
				t.Fatalf("cond fragment: %v", err)
			}
			body, err := NewFragmentVM(m, bodyProg, fr.Object)
			if err != nil {
				t.Fatalf("body fragment: %v", err)
			}
			for {
				v, _, err := cond.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !v.Truthy() {
					break
				}
				if _, _, err := body.Run(); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for {
				v, err := m.EvalIn(fr, loop.Cond)
				if err != nil {
					t.Fatal(err)
				}
				if !v.Truthy() {
					break
				}
				if _, err := m.ExecIn(fr, loop.Body); err != nil {
					t.Fatal(err)
				}
			}
		}
		return sumObj.Cells[0].AsInt(), sink, m.Steps()
	}

	wSum, wSink, wSteps := run(false)
	vSum, vSink, vSteps := run(true)
	if wSum != vSum {
		t.Fatalf("sum mismatch: walker %d, vm %d", wSum, vSum)
	}
	if wSink != vSink {
		t.Fatalf("cost mismatch:\nwalker: %+v\nvm:     %+v", wSink, vSink)
	}
	if wSteps != vSteps {
		t.Fatalf("steps mismatch: walker %d, vm %d", wSteps, vSteps)
	}
}

// minicWalk visits every Ident in every function body expression via the
// statement tree (small test helper, not exhaustive for all node kinds).
func minicWalk(prog *minic.Program, visit func(*minic.Ident)) {
	var walkExpr func(e minic.Expr)
	walkExpr = func(e minic.Expr) {
		switch x := e.(type) {
		case *minic.Ident:
			visit(x)
		case *minic.Unary:
			walkExpr(x.X)
		case *minic.Postfix:
			walkExpr(x.X)
		case *minic.Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *minic.Assign:
			walkExpr(x.L)
			walkExpr(x.R)
		case *minic.Cond:
			walkExpr(x.C)
			walkExpr(x.T)
			walkExpr(x.F)
		case *minic.Index:
			walkExpr(x.X)
			walkExpr(x.Idx)
		case *minic.Cast:
			walkExpr(x.X)
		case *minic.Call:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmt func(s minic.Stmt)
	walkStmt = func(s minic.Stmt) {
		switch x := s.(type) {
		case *minic.Block:
			for _, inner := range x.Stmts {
				walkStmt(inner)
			}
		case *minic.ExprStmt:
			walkExpr(x.X)
		case *minic.If:
			walkExpr(x.Cond)
			walkStmt(x.Then)
			walkStmt(x.Else)
		case *minic.While:
			walkExpr(x.Cond)
			walkStmt(x.Body)
		case *minic.For:
			walkStmt(x.Init)
			if x.Cond != nil {
				walkExpr(x.Cond)
			}
			if x.Post != nil {
				walkExpr(x.Post)
			}
			walkStmt(x.Body)
		case *minic.Return:
			if x.X != nil {
				walkExpr(x.X)
			}
		case *minic.DeclStmt:
			for _, d := range x.Decls {
				if d.Init != nil {
					walkExpr(d.Init)
				}
			}
		}
	}
	for _, fn := range prog.Funcs {
		walkStmt(fn.Body)
	}
}
