package bytecode

import (
	"errors"
	"fmt"
)

// Bounds describes the pool and frame sizes instruction operands index
// into, for operand range verification.
type Bounds struct {
	NumRegs     int32
	NumObjSlots int32
	Consts      int32
	Strs        int32
	Types       int32
	Syms        int32
	Allocs      int32
	Ops         int32
	Callees     int32
}

// boundsFor derives verification bounds from a program and function.
func boundsFor(p *Program, fn *Fn) Bounds {
	return Bounds{
		NumRegs:     fn.NumRegs,
		NumObjSlots: fn.NumObjSlots,
		Consts:      int32(len(p.Consts)),
		Strs:        int32(len(p.Strs)),
		Types:       int32(len(p.Types)),
		Syms:        int32(len(p.Syms)),
		Allocs:      int32(len(p.Allocs)),
		Ops:         int32(len(p.Ops)),
		Callees:     int32(len(p.Callees)),
	}
}

// Verify checks every compiled function's code for well-formedness:
// operand indices inside their pools, registers inside the frame, and
// jump targets inside the code. The compiler always emits verifiable
// code; the check guards decoded/fuzzed instruction streams and catches
// compiler regressions in tests.
func Verify(p *Program) error {
	if p.Main >= len(p.Fns) {
		return fmt.Errorf("bytecode: main index %d out of range", p.Main)
	}
	for _, fn := range p.Fns {
		if fn.Fallback {
			continue
		}
		for _, prm := range fn.Params {
			if prm.Reg < 0 && prm.Slot < 0 {
				return fmt.Errorf("bytecode: %s: parameter with no location", fn.Name)
			}
			if prm.Reg >= fn.NumRegs || prm.Slot >= fn.NumObjSlots {
				return fmt.Errorf("bytecode: %s: parameter location out of range", fn.Name)
			}
		}
		if err := VerifyCode(fn.Code, boundsFor(p, fn)); err != nil {
			return fmt.Errorf("bytecode: %s: %w", fn.Name, err)
		}
	}
	return nil
}

// VerifyCode checks one instruction sequence against operand bounds.
func VerifyCode(code []Instr, b Bounds) error {
	n := int32(len(code))
	reg := func(r int32) error {
		if r < 0 || r >= b.NumRegs {
			return fmt.Errorf("register r%d out of range [0,%d)", r, b.NumRegs)
		}
		return nil
	}
	target := func(t int32) error {
		// Branching to n (one past the end) is a valid fall-off exit.
		if t < 0 || t > n {
			return fmt.Errorf("jump target %d out of range [0,%d]", t, n)
		}
		return nil
	}
	idx := func(what string, i, limit int32) error {
		if i < 0 || i >= limit {
			return fmt.Errorf("%s index %d out of range [0,%d)", what, i, limit)
		}
		return nil
	}
	objRef := func(ref int32) error {
		if ref < 0 {
			return idx("object slot", -ref-1, b.NumObjSlots)
		}
		return idx("symbol", ref, b.Syms)
	}

	for pc, in := range code {
		var err error
		switch in.Op {
		case OpNop, OpRetZ:
		case OpCharge:
			if in.A < 0 || in.B < 0 {
				err = errors.New("negative charge")
			}
		case OpJmp:
			err = target(in.A)
		case OpBr:
			err = firstErr(reg(in.A), target(in.B), target(in.C))
		case OpRet, OpArg, OpZero:
			err = reg(in.A)
		case OpConst:
			err = firstErr(reg(in.A), idx("const", in.B, b.Consts))
		case OpMove, OpBool, OpNeg, OpNot, OpBnot, OpChkP:
			err = firstErr(reg(in.A), reg(in.B))
		case OpAddI, OpSubI, OpMulI, OpDivI, OpModI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI,
			OpEqI, OpNeI, OpLtI, OpLeI, OpGtI, OpGeI,
			OpAddF, OpSubF, OpMulF, OpDivF, OpEqF, OpNeF, OpLtF, OpLeF, OpGtF, OpGeF:
			err = firstErr(reg(in.A), reg(in.B), reg(in.C))
		case OpBin:
			err = firstErr(reg(in.A), reg(in.B), reg(in.C), idx("operator", in.D, b.Ops))
		case OpAddN:
			err = firstErr(reg(in.A), reg(in.B))
		case OpCvt:
			err = firstErr(reg(in.A), reg(in.B), idx("type", in.C, b.Types))
		case OpLoadV, OpStoreV:
			err = firstErr(reg(in.A), reg(in.B), idx("symbol", in.C, b.Syms))
		case OpLoadO, OpAddrO:
			err = firstErr(reg(in.A), objRef(in.B))
		case OpStoreO:
			err = firstErr(objRef(in.A), reg(in.B))
		case OpAlloc:
			err = firstErr(idx("object slot", in.A, b.NumObjSlots), idx("alloc spec", in.B, b.Allocs))
			if err == nil && in.C >= 0 {
				err = reg(in.C)
			}
		case OpLoadP, OpStoreP:
			err = firstErr(reg(in.A), reg(in.B))
		case OpIdx:
			err = firstErr(reg(in.A), reg(in.B), reg(in.C))
		case OpStr, OpStdio:
			err = firstErr(reg(in.A), idx("string", in.B, b.Strs))
		case OpCall:
			err = firstErr(reg(in.A), idx("callee", in.B, b.Callees))
			if err == nil && in.C < 0 {
				err = errors.New("negative arg count")
			}
		default:
			err = fmt.Errorf("invalid opcode %d", in.Op)
		}
		if err != nil {
			return fmt.Errorf("pc %d (%s): %w", pc, in.Op.Name(), err)
		}
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
