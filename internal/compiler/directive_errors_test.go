package compiler

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestParseDirectiveErrorMessages pins the exact diagnostic for every
// malformed-pragma class: the messages are part of the user interface
// (hdcc and hdlint print them verbatim) and must name the offending
// clause and pragma.
func TestParseDirectiveErrorMessages(t *testing.T) {
	cases := []struct{ text, want string }{
		{
			"omp parallel for",
			`compiler: not a mapreduce pragma: "omp parallel for"`,
		},
		{
			"mapreduce key(a) value(b)",
			`compiler: pragma "mapreduce key(a) value(b)" has neither mapper nor combiner clause`,
		},
		{
			"mapreduce mapper value(b)",
			"compiler: mapper pragma missing required key clause",
		},
		{
			"mapreduce combiner key(a) value(b)",
			"compiler: combiner pragma requires keyin and valuein clauses",
		},
		{
			"mapreduce mapper key(a) value(b) keyin(c) valuein(d)",
			"compiler: keyin/valuein are valid only on the combiner",
		},
		{
			"mapreduce mapper key(a) value(b) bogus(c)",
			`compiler: unknown clause "bogus" in pragma "mapreduce mapper key(a) value(b) bogus(c)"`,
		},
		{
			"mapreduce mapper key(a) key(b) value(c)",
			`compiler: duplicate clause "key" in pragma "mapreduce mapper key(a) key(b) value(c)"`,
		},
		{
			"mapreduce mapper key(a, b) value(c)",
			`compiler: clause "key" wants exactly one argument, got [a b]`,
		},
		{
			"mapreduce mapper key(a) value(b) keylength(notanumber)",
			`compiler: clause "keylength" wants an integer literal, got "notanumber"`,
		},
		{
			"mapreduce mapper key(a) value(b) keylength(-3)",
			`compiler: clause "keylength" must be non-negative, got -3`,
		},
		{
			"mapreduce mapper key(a value(b)",
			`compiler: unbalanced parentheses in pragma "mapreduce mapper key(a value(b)"`,
		},
	}
	for _, tc := range cases {
		_, err := ParseDirective(tc.text)
		if err == nil {
			t.Errorf("ParseDirective(%q) succeeded, want %q", tc.text, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("ParseDirective(%q):\n got %q\nwant %q", tc.text, err.Error(), tc.want)
		}
	}
}

// TestBadPragmaPositionReported: a malformed pragma inside a full program
// surfaces as a positioned HD101 diagnostic pointing at the pragma's own
// line, not at some later token.
func TestBadPragmaPositionReported(t *testing.T) {
	src := `int main() {
	int k, v;
	#pragma mapreduce mapper key(k) value(v) bogus(x)
	{
		k = 1; v = 2;
		printf("%d\t%d\n", k, v);
	}
	return 0;
}`
	diags := Lint("job.c", src)
	var hit *analysis.Diagnostic
	for i := range diags {
		if diags[i].Code == "HD101" {
			hit = &diags[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("no HD101 diagnostic for a bogus clause; got %v", diags)
	}
	if hit.Pos.Line != 3 {
		t.Errorf("HD101 points at line %d, want 3", hit.Pos.Line)
	}
	if !strings.Contains(hit.String(), "job.c:3") {
		t.Errorf("rendered diagnostic does not carry job.c:3: %q", hit.String())
	}
	if !strings.Contains(hit.Message, `"bogus"`) {
		t.Errorf("diagnostic does not name the bad clause: %q", hit.Message)
	}
}
