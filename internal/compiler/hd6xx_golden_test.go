package compiler_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compiler"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestHD6xxGoldenDiagnostics pins the exact rendered text of every HD6xx
// optimization-lint diagnostic over the corpus trigger programs: codes,
// positions, messages, and fix hints all come from the shared SSA fact
// base (internal/ir), so any drift there shows up as a byte diff here.
func TestHD6xxGoldenDiagnostics(t *testing.T) {
	var buf bytes.Buffer
	for _, c := range lintCorpus {
		if !strings.HasPrefix(c.code, "HD6") {
			continue
		}
		fmt.Fprintf(&buf, "== %s ==\n", c.code)
		for _, d := range compiler.Lint(c.code+".c", c.src) {
			fmt.Fprintln(&buf, d.String())
		}
	}
	if buf.Len() == 0 {
		t.Fatal("no HD6xx corpus entries found")
	}
	golden := filepath.Join("testdata", "hd6xx_diags.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/compiler -run HD6xxGolden -update`): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("HD6xx diagnostics differ from %s (re-run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
