package compiler

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/ir"
	"repro/internal/kv"
	"repro/internal/minic"
	"repro/internal/perf"
)

// VarClass is the GPU placement of a variable used inside a kernel region,
// per Algorithm 1 of the paper.
type VarClass int

// Variable classes.
const (
	// ClassLocal: declared inside the region; thread-private registers.
	ClassLocal VarClass = iota
	// ClassPrivate: declared outside, privatized per thread.
	ClassPrivate
	// ClassFirstPrivate: privatized per thread, initialized from the host
	// value before the kernel.
	ClassFirstPrivate
	// ClassROScalar: shared read-only scalar, passed as a kernel parameter
	// (CUDA places it in constant memory).
	ClassROScalar
	// ClassROArray: shared read-only array in global memory
	// (cudaMalloc + cudaMemcpy in).
	ClassROArray
	// ClassTexture: shared read-only array bound to texture memory.
	ClassTexture
)

func (c VarClass) String() string {
	switch c {
	case ClassLocal:
		return "local"
	case ClassPrivate:
		return "private"
	case ClassFirstPrivate:
		return "firstprivate"
	case ClassROScalar:
		return "sharedRO-scalar(constant)"
	case ClassROArray:
		return "sharedRO-array(global)"
	case ClassTexture:
		return "texture"
	default:
		return "?"
	}
}

// KernelSpec is the translator's output for one directive region: the
// rewritten AST region (with GPU runtime intrinsics substituted), the
// variable placement plan, and launch/tuning attributes. The GPU executor
// (package gpurt) instantiates per-thread frames from this plan.
type KernelSpec struct {
	Kind      RegionKind
	Directive *Directive

	// Prog is the GPU-side program (a fresh parse of the source whose
	// region has been rewritten in place).
	Prog *minic.Program
	// Fn is the function containing the region (usually main).
	Fn *minic.FuncDecl
	// Region is the rewritten directive-attached statement.
	Region minic.Stmt

	// Plan classifies every outside variable used in the region.
	Plan map[*minic.Symbol]VarClass

	// KeySym / ValSym are the emitting variables; KeyInSym / ValInSym the
	// receiving ones (combiner only).
	KeySym, ValSym     *minic.Symbol
	KeyInSym, ValInSym *minic.Symbol

	// Launch geometry (resolved from clauses or defaults).
	Blocks  int
	Threads int
	// KVPairs is the per-record emission bound (0 = unknown).
	KVPairs int

	// VectorKey / VectorVal mark array keys/values eligible for char4-style
	// vectorized loads and stores (paper §4.1, §4.2).
	VectorKey bool
	VectorVal bool

	// Warnings from the privatization analysis (paper §3.2).
	Warnings []string
}

// Default launch geometry when blocks/threads clauses are absent.
const (
	DefaultBlocks  = 64
	DefaultThreads = 128
)

// Compiled is the result of translating one directive-annotated MiniC
// source file.
type Compiled struct {
	Source string
	// HostProg is the unmodified program compiled for the CPU streaming
	// path (pragmas are comments there).
	HostProg *minic.Program
	// Kernel is the translated GPU kernel spec.
	Kernel *KernelSpec
	// Schema is the KV wire schema derived from the directive and the
	// key/value variable types.
	Schema kv.Schema
	// CUDA is the CUDA-flavoured rendering of the generated kernel.
	CUDA string
	// Diagnostics holds the static-analysis findings when compilation ran
	// with Options.Analyze (nil otherwise). Analysis is strictly read-only:
	// it never changes the generated kernel.
	Diagnostics []analysis.Diagnostic
	// HostOpt / KernelOpt are the SSA optimizer's per-pass statistics for
	// the host program and the translated kernel program (nil when
	// compilation ran with Options.DisableOpt).
	HostOpt   *ir.Stats
	KernelOpt *ir.Stats
	// VM is the host program lowered to register bytecode — the default
	// execution core of the streaming path (nil with Options.DisableVM).
	VM *bytecode.Program
	// KernelCond / KernelBody are the mapper region's loop condition and
	// body as bytecode fragments for the GPU kernel executor; KernelRegion
	// is the combiner region as one fragment. A nil fragment (unsupported
	// construct, or DisableVM) sends that kernel to the tree-walker.
	KernelCond   *bytecode.Program
	KernelBody   *bytecode.Program
	KernelRegion *bytecode.Program
}

// Options configures CompileOpts.
type Options struct {
	// Analyze runs the hdlint static-analysis suite (directive, dataflow,
	// parallel-legality, GPU-safety, and IO-purity passes) over the source
	// and the translated kernel, filling Compiled.Diagnostics.
	Analyze bool
	// File names the source in error messages and diagnostics.
	File string
	// DisableOpt turns off the SSA optimizer (-O0). The zero value
	// optimizes: both the host program and the kernel program run the
	// analysis-driven passes before being handed to the backends.
	DisableOpt bool
	// DisableVM turns off the register-bytecode execution core (-novm):
	// the backends fall back to the AST tree-walker. The zero value
	// compiles bytecode.
	DisableVM bool
	// Prof, when non-nil, charges the host parse and the GPU translation
	// to wall-clock phase buckets.
	Prof *perf.Profiler
}

// Compile translates a directive-annotated MiniC source. It returns an
// error if the source has no mapreduce pragma; plain (directive-free)
// sources are valid Hadoop Streaming programs but have no GPU version.
func Compile(src string) (*Compiled, error) { return CompileOpts(src, Options{}) }

// CompileOpts is Compile with options.
func CompileOpts(src string, opts Options) (*Compiled, error) {
	endHost := opts.Prof.Phase(perf.PhaseHostCompile)
	host, err := minic.ParseAndCheckFile(opts.File, src)
	endHost()
	if err != nil {
		return nil, err
	}
	endXlate := opts.Prof.Phase(perf.PhaseGPUTranslate)
	spec, schema, err := translateSource(opts.File, src)
	if err != nil {
		endXlate()
		return nil, err
	}
	cuda := EmitCUDA(spec, schema)
	endXlate()
	c := &Compiled{
		Source:   src,
		HostProg: host,
		Kernel:   spec,
		Schema:   schema,
		CUDA:     cuda,
	}
	if opts.Analyze {
		diags := analysis.Analyze(host)
		diags = append(diags, analysis.AnalyzeKernel(kernelView(opts.File, spec))...)
		analysis.Sort(diags)
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		c.Diagnostics = diags
	}
	// Optimize last: lints and the CUDA rendering see the program as
	// written, while all three executing backends (interpreter, streaming,
	// GPU) receive the optimized ASTs.
	if !opts.DisableOpt {
		endOpt := opts.Prof.Phase(perf.PhaseOptimize)
		c.HostOpt = ir.OptimizeProgram(host)
		c.KernelOpt = ir.OptimizeProgram(spec.Prog)
		endOpt()
	}
	// Lower to register bytecode after optimization (the compiler lowers
	// whatever AST the backends will execute). Functions or fragments the
	// bytecode compiler declines stay on the tree-walker per function.
	if !opts.DisableVM {
		endBC := opts.Prof.Phase(perf.PhaseBytecodeCompile)
		c.VM = bytecode.Compile(host)
		if spec.Kind == RegionMapper {
			if loop, ok := spec.Region.(*minic.While); ok {
				c.KernelCond = bytecode.CompileFragmentExpr(loop.Cond)
				c.KernelBody = bytecode.CompileFragmentStmt(loop.Body)
			}
		} else {
			c.KernelRegion = bytecode.CompileFragmentStmt(spec.Region)
		}
		endBC()
	}
	return c, nil
}

// translateSource runs the GPU side of compilation: a private parse, region
// extraction, call substitution, classification, and schema derivation.
func translateSource(file, src string) (*KernelSpec, kv.Schema, error) {
	gpu, err := minic.ParseAndCheckFile(file, src)
	if err != nil {
		return nil, kv.Schema{}, err
	}
	pragmas := mapreducePragmas(gpu)
	if len(pragmas) == 0 {
		return nil, kv.Schema{}, fmt.Errorf("compiler: source has no mapreduce pragma")
	}
	if len(pragmas) > 1 {
		return nil, kv.Schema{}, fmt.Errorf("compiler: source has %d mapreduce pragmas, want 1 per file", len(pragmas))
	}
	d, err := ParseDirective(pragmas[0].Text)
	if err != nil {
		return nil, kv.Schema{}, fmt.Errorf("%s: %w", minic.ErrPrefix(file, pragmas[0].Pos), err)
	}
	spec, err := translate(gpu, pragmas[0], d)
	if err != nil {
		return nil, kv.Schema{}, err
	}
	schema, err := deriveSchema(spec)
	if err != nil {
		return nil, kv.Schema{}, err
	}
	return spec, schema, nil
}

// kernelView adapts a translated KernelSpec into the analysis package's
// kernel model for the GPU-safety pass.
func kernelView(file string, spec *KernelSpec) *analysis.Kernel {
	spaces := map[*minic.Symbol]analysis.MemSpace{}
	for sym, cls := range spec.Plan {
		switch cls {
		case ClassLocal:
			spaces[sym] = analysis.SpaceLocal
		case ClassPrivate:
			spaces[sym] = analysis.SpacePrivate
		case ClassFirstPrivate:
			spaces[sym] = analysis.SpaceFirstPrivate
		case ClassROScalar:
			spaces[sym] = analysis.SpaceConstScalar
		case ClassROArray:
			spaces[sym] = analysis.SpaceGlobalRO
		case ClassTexture:
			spaces[sym] = analysis.SpaceTexture
		}
	}
	clauseRO := map[string]bool{}
	for _, name := range spec.Directive.SharedRO {
		clauseRO[name] = true
	}
	for _, name := range spec.Directive.Texture {
		clauseRO[name] = true
	}
	return &analysis.Kernel{
		File:     file,
		Combiner: spec.Kind == RegionCombiner,
		Region:   spec.Region,
		Spaces:   spaces,
		ClauseRO: clauseRO,
	}
}

// Lint runs the full static-analysis suite over one source without
// stopping at the first problem: frontend failures surface as HD001,
// kernel-translation failures as HD002, and directive-free sources (plain
// streaming reducers) get the source-level passes only. The kernel passes
// run when the source compiles and no source-level pass found an error.
func Lint(file, src string) []analysis.Diagnostic {
	prog, err := minic.ParseAndCheckFile(file, src)
	if err != nil {
		return []analysis.Diagnostic{frontendDiag(file, err)}
	}
	diags := analysis.Analyze(prog)
	pragmas := mapreducePragmas(prog)
	if len(pragmas) == 1 && !analysis.HasErrors(diags) {
		if spec, _, err := translateSource(file, src); err != nil {
			diags = append(diags, analysis.Diagnostic{
				Code:     "HD002",
				Severity: analysis.SevError,
				File:     file,
				Pos:      pragmas[0].Pos,
				Message:  fmt.Sprintf("directive region fails to translate: %v", stripPosPrefix(file, err.Error())),
			})
		} else {
			diags = append(diags, analysis.AnalyzeKernel(kernelView(file, spec))...)
		}
	}
	analysis.Sort(diags)
	return diags
}

// LintCatalog returns the documented diagnostic codes (re-exported so
// tools driving Lint need not import the analysis package).
func LintCatalog() []analysis.CodeInfo { return analysis.Catalog }

// frontendDiag wraps a parse/sema error as an HD001 diagnostic, recovering
// the position from the error's "file:line:col:" prefix when present.
func frontendDiag(file string, err error) analysis.Diagnostic {
	msg := err.Error()
	pos := minic.Pos{}
	for _, prefix := range []string{file + ":", "minic: "} {
		if prefix == ":" || !strings.HasPrefix(msg, prefix) {
			continue
		}
		rest := msg[len(prefix):]
		var l, c int
		var tail string
		if n, _ := fmt.Sscanf(rest, "%d:%d: %s", &l, &c, &tail); n >= 2 {
			pos = minic.Pos{Line: l, Col: c}
			if i := strings.Index(rest, ": "); i >= 0 {
				msg = rest[i+2:]
			}
		}
		break
	}
	return analysis.Diagnostic{
		Code:     "HD001",
		Severity: analysis.SevError,
		File:     file,
		Pos:      pos,
		Message:  msg,
	}
}

// stripPosPrefix removes a leading position prefix from nested error text
// so HD002 messages don't repeat the location twice.
func stripPosPrefix(file, msg string) string {
	if file != "" && strings.HasPrefix(msg, file+":") {
		rest := msg[len(file)+1:]
		var l, c int
		if n, _ := fmt.Sscanf(rest, "%d:%d:", &l, &c); n == 2 {
			if i := strings.Index(rest, ": "); i >= 0 {
				return rest[i+2:]
			}
		}
	}
	return msg
}

// MustCompile compiles src and panics on error; for the built-in benchmark
// sources.
func MustCompile(src string) *Compiled {
	c, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return c
}

func mapreducePragmas(prog *minic.Program) []*minic.PragmaStmt {
	var out []*minic.PragmaStmt
	for _, p := range minic.FindPragmas(prog) {
		if p.IsMapReduce() {
			out = append(out, p)
		}
	}
	return out
}

// translate performs kernel extraction: region validation, call
// substitution, and Algorithm-1 variable classification.
func translate(prog *minic.Program, pragma *minic.PragmaStmt, d *Directive) (*KernelSpec, error) {
	fn := enclosingFunc(prog, pragma)
	if fn == nil {
		return nil, fmt.Errorf("compiler: cannot find function enclosing the pragma")
	}
	// Region shape check: the paper attaches mapper directives to the
	// record while-loop and combiner directives to a while loop or block.
	switch d.Kind {
	case RegionMapper:
		if _, ok := pragma.Body.(*minic.While); !ok {
			return nil, fmt.Errorf("compiler: mapper pragma must annotate a while loop, got %T", pragma.Body)
		}
	case RegionCombiner:
		switch pragma.Body.(type) {
		case *minic.While, *minic.Block:
		default:
			return nil, fmt.Errorf("compiler: combiner pragma must annotate a while loop or block, got %T", pragma.Body)
		}
	}

	spec := &KernelSpec{
		Kind:      d.Kind,
		Directive: d,
		Prog:      prog,
		Fn:        fn,
		Region:    pragma.Body,
		Plan:      map[*minic.Symbol]VarClass{},
		Blocks:    d.Blocks,
		Threads:   d.Threads,
		KVPairs:   d.KVPairs,
	}
	if spec.Blocks == 0 {
		spec.Blocks = DefaultBlocks
	}
	if spec.Threads == 0 {
		spec.Threads = DefaultThreads
	}

	// Resolve the directive's named variables against region symbols.
	syms := visibleSymbols(fn, prog)
	resolve := func(name, clause string, required bool) (*minic.Symbol, error) {
		if name == "" {
			if required {
				return nil, fmt.Errorf("compiler: missing %s clause", clause)
			}
			return nil, nil
		}
		s, ok := syms[name]
		if !ok {
			return nil, fmt.Errorf("compiler: %s clause names unknown variable %q", clause, name)
		}
		return s, nil
	}
	var err error
	if spec.KeySym, err = resolve(d.Key, "key", true); err != nil {
		return nil, err
	}
	if spec.ValSym, err = resolve(d.Value, "value", true); err != nil {
		return nil, err
	}
	if d.Kind == RegionCombiner {
		if spec.KeyInSym, err = resolve(d.KeyIn, "keyin", true); err != nil {
			return nil, err
		}
		if spec.ValInSym, err = resolve(d.ValueIn, "valuein", true); err != nil {
			return nil, err
		}
	}
	for _, lst := range [][]string{d.FirstPrivate, d.SharedRO, d.Texture} {
		for _, name := range lst {
			if _, ok := syms[name]; !ok {
				return nil, fmt.Errorf("compiler: clause names unknown variable %q", name)
			}
		}
	}

	// Substitute stdio calls with GPU runtime intrinsics.
	subs := rewriteRegion(spec)
	if d.Kind == RegionMapper && subs.records == 0 {
		return nil, fmt.Errorf("compiler: mapper region never reads records (no getline call found)")
	}
	if d.Kind == RegionCombiner && subs.kvReads == 0 {
		return nil, fmt.Errorf("compiler: combiner region never reads KV pairs (no scanf call found)")
	}
	if subs.emits == 0 {
		spec.Warnings = append(spec.Warnings,
			fmt.Sprintf("%s region emits no KV pairs (no printf call found)", d.Kind))
	}

	// Algorithm 1: classify variables used in the region.
	if err := classifyVariables(spec); err != nil {
		return nil, err
	}

	// Vectorization eligibility: array keys/values use CUDA vector types.
	spec.VectorKey = isArrayLike(spec.KeySym.Type)
	spec.VectorVal = isArrayLike(spec.ValSym.Type)
	return spec, nil
}

func isArrayLike(t *minic.Type) bool {
	return t != nil && (t.Kind == minic.TypeArray || t.Kind == minic.TypePointer)
}

// enclosingFunc finds the function whose body contains the pragma.
func enclosingFunc(prog *minic.Program, pragma *minic.PragmaStmt) *minic.FuncDecl {
	for _, f := range prog.Funcs {
		found := false
		walkStmts(f.Body, func(s minic.Stmt) {
			if s == minic.Stmt(pragma) {
				found = true
			}
		})
		if found {
			return f
		}
	}
	return nil
}

// visibleSymbols maps names to symbols declared in fn (params and all
// nested declarations) plus file-scope globals. Inner declarations win over
// outer ones with the same name only if encountered later, which matches
// the benchmarks' usage (unique names).
func visibleSymbols(fn *minic.FuncDecl, prog *minic.Program) map[string]*minic.Symbol {
	out := map[string]*minic.Symbol{}
	for _, g := range prog.Globals {
		for _, dcl := range g.Decls {
			out[dcl.Name] = dcl.Sym
		}
	}
	for _, p := range fn.Params {
		out[p.Name] = p.Sym
	}
	walkStmts(fn.Body, func(s minic.Stmt) {
		if ds, ok := s.(*minic.DeclStmt); ok {
			for _, dcl := range ds.Decls {
				out[dcl.Name] = dcl.Sym
			}
		}
	})
	return out
}

// walkStmts visits s and every nested statement.
func walkStmts(s minic.Stmt, visit func(minic.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch st := s.(type) {
	case *minic.Block:
		for _, inner := range st.Stmts {
			walkStmts(inner, visit)
		}
	case *minic.If:
		walkStmts(st.Then, visit)
		walkStmts(st.Else, visit)
	case *minic.While:
		walkStmts(st.Body, visit)
	case *minic.For:
		walkStmts(st.Init, visit)
		walkStmts(st.Body, visit)
	case *minic.PragmaStmt:
		walkStmts(st.Body, visit)
	}
}

// walkExprs visits every expression in s, including nested ones.
func walkExprs(s minic.Stmt, visit func(minic.Expr)) {
	walkStmts(s, func(st minic.Stmt) {
		switch x := st.(type) {
		case *minic.ExprStmt:
			walkExpr(x.X, visit)
		case *minic.DeclStmt:
			for _, dcl := range x.Decls {
				walkExpr(dcl.Init, visit)
			}
		case *minic.If:
			walkExpr(x.Cond, visit)
		case *minic.While:
			walkExpr(x.Cond, visit)
		case *minic.For:
			walkExpr(x.Cond, visit)
			walkExpr(x.Post, visit)
		case *minic.Return:
			walkExpr(x.X, visit)
		}
	})
}

func walkExpr(e minic.Expr, visit func(minic.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *minic.Unary:
		walkExpr(x.X, visit)
	case *minic.Postfix:
		walkExpr(x.X, visit)
	case *minic.Binary:
		walkExpr(x.L, visit)
		walkExpr(x.R, visit)
	case *minic.Assign:
		walkExpr(x.L, visit)
		walkExpr(x.R, visit)
	case *minic.Cond:
		walkExpr(x.C, visit)
		walkExpr(x.T, visit)
		walkExpr(x.F, visit)
	case *minic.Call:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	case *minic.Index:
		walkExpr(x.X, visit)
		walkExpr(x.Idx, visit)
	case *minic.Cast:
		walkExpr(x.X, visit)
	}
}

// substitutions tallies the call rewrites performed in a region.
type substitutions struct {
	records int // getline -> getRecord
	kvReads int // scanf   -> getKV
	emits   int // printf  -> emitKV / storeKV
	strings int // str*    -> str*GPU
}

// rewriteRegion replaces C stdio/string calls inside the region with GPU
// runtime intrinsics, mutating the region AST in place (the GPU program is
// a private parse, so the host program is unaffected).
func rewriteRegion(spec *KernelSpec) substitutions {
	var subs substitutions
	d := spec.Directive
	walkExprs(spec.Region, func(e minic.Expr) {
		call, ok := e.(*minic.Call)
		if !ok {
			return
		}
		switch call.Name {
		case "getline":
			// getline(&line, &n, stdin) -> getRecord(&line): the runtime
			// points *line into the input buffer (ip) and returns the
			// record length, mirroring Listing 3's getRecord.
			call.Name = "getRecord"
			if len(call.Args) >= 1 {
				call.Args = call.Args[:1]
			}
			call.Builtin = true
			subs.records++
		case "scanf":
			// scanf("...", args...) -> getKV(args...): reads the next KV
			// pair of the warp's chunk into the keyin/valuein variables.
			call.Name = "getKV"
			if len(call.Args) >= 1 {
				call.Args = call.Args[1:]
			}
			call.Builtin = true
			subs.kvReads++
		case "printf":
			// printf(fmt, ...) -> emitKV(key, value) in the mapper or
			// storeKV(key, value) in the combiner, using the directive's
			// key/value variables (the format string is discarded; the
			// KV schema defines the wire format).
			if d.Kind == RegionMapper {
				call.Name = "emitKV"
			} else {
				call.Name = "storeKV"
			}
			call.Args = []minic.Expr{identFor(spec.KeySym), identFor(spec.ValSym)}
			call.Builtin = true
			subs.emits++
		case "strcmp", "strcpy", "strlen":
			// Vector-eligible string functions get GPU counterparts that
			// model coalesced char4 accesses (paper §4.1).
			call.Name = call.Name + "GPU"
			call.Builtin = true
			subs.strings++
		}
	})
	return subs
}

// identFor builds a resolved identifier expression for a symbol.
func identFor(sym *minic.Symbol) minic.Expr {
	id := &minic.Ident{Name: sym.Name, Sym: sym}
	id.SetType(sym.Type)
	return id
}

// classifyVariables implements Algorithm 1 (HandleVariables): it assigns a
// VarClass to every symbol used inside the region. Auto-privatization
// marks a variable firstprivate when its first region access is a read,
// and warns when aliasing makes that analysis unreliable.
func classifyVariables(spec *KernelSpec) error {
	d := spec.Directive
	inSet := func(list []string, name string) bool {
		for _, n := range list {
			if n == name {
				return true
			}
		}
		return false
	}

	// Symbols declared inside the region are local.
	local := map[*minic.Symbol]bool{}
	walkStmts(spec.Region, func(s minic.Stmt) {
		if ds, ok := s.(*minic.DeclStmt); ok {
			for _, dcl := range ds.Decls {
				local[dcl.Sym] = true
			}
		}
	})

	// Ordered first-access analysis.
	type access struct {
		sym   *minic.Symbol
		write bool
	}
	var accesses []access
	record := func(sym *minic.Symbol, write bool) {
		if sym == nil || sym.Kind == minic.SymBuiltin {
			return
		}
		accesses = append(accesses, access{sym, write})
	}
	var visitExpr func(e minic.Expr, write bool)
	visitExpr = func(e minic.Expr, write bool) {
		switch x := e.(type) {
		case *minic.Ident:
			record(x.Sym, write)
		case *minic.Unary:
			switch x.Op {
			case "&":
				// Address taken: the callee may write through it.
				visitExpr(x.X, true)
			case "++", "--":
				visitExpr(x.X, true)
			default:
				visitExpr(x.X, write)
			}
		case *minic.Postfix:
			visitExpr(x.X, true)
		case *minic.Binary:
			visitExpr(x.L, write)
			visitExpr(x.R, write)
		case *minic.Assign:
			visitExpr(x.R, false)
			visitExpr(x.L, true)
		case *minic.Cond:
			visitExpr(x.C, false)
			visitExpr(x.T, write)
			visitExpr(x.F, write)
		case *minic.Call:
			for _, a := range x.Args {
				// An array decays to a pointer at a call site, so the
				// callee may write through it; treat it as a write, like
				// an explicit address-of.
				if id, ok := a.(*minic.Ident); ok && id.Sym != nil &&
					id.Sym.Type != nil && id.Sym.Type.IsPointerLike() {
					visitExpr(a, true)
					continue
				}
				visitExpr(a, false)
			}
		case *minic.Index:
			// Writing a[i] writes into a; reading reads it.
			visitExpr(x.X, write)
			visitExpr(x.Idx, false)
		case *minic.Cast:
			visitExpr(x.X, write)
		}
	}
	walkStmts(spec.Region, func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.ExprStmt:
			visitExpr(st.X, false)
		case *minic.DeclStmt:
			for _, dcl := range st.Decls {
				if dcl.Init != nil {
					visitExpr(dcl.Init, false)
				}
			}
		case *minic.If:
			visitExpr(st.Cond, false)
		case *minic.While:
			visitExpr(st.Cond, false)
		case *minic.For:
			if st.Cond != nil {
				visitExpr(st.Cond, false)
			}
			if st.Post != nil {
				visitExpr(st.Post, false)
			}
		case *minic.Return:
			if st.X != nil {
				visitExpr(st.X, false)
			}
		}
	})

	firstAccess := map[*minic.Symbol]bool{} // true = first access was a read
	seen := map[*minic.Symbol]bool{}
	for _, a := range accesses {
		if seen[a.sym] {
			continue
		}
		seen[a.sym] = true
		firstAccess[a.sym] = !a.write
	}

	for sym := range seen {
		if local[sym] {
			spec.Plan[sym] = ClassLocal
			continue
		}
		name := sym.Name
		switch {
		case inSet(d.SharedRO, name):
			if sym.Type.IsPointerLike() {
				spec.Plan[sym] = ClassROArray
			} else {
				spec.Plan[sym] = ClassROScalar
			}
		case inSet(d.Texture, name):
			if !sym.Type.IsPointerLike() {
				return fmt.Errorf("compiler: texture clause variable %q is not an array", name)
			}
			spec.Plan[sym] = ClassTexture
		case inSet(d.FirstPrivate, name):
			spec.Plan[sym] = ClassFirstPrivate
		case sym.Global:
			// File-scope data is shared read-only by MapReduce semantics.
			if sym.Type.IsPointerLike() {
				spec.Plan[sym] = ClassROArray
			} else {
				spec.Plan[sym] = ClassROScalar
			}
		default:
			if firstAccess[sym] {
				spec.Plan[sym] = ClassFirstPrivate
				if sym.Type.Kind == minic.TypePointer {
					spec.Warnings = append(spec.Warnings, fmt.Sprintf(
						"auto-privatization of pointer %q may be inaccurate due to aliasing; consider a firstprivate clause", name))
				}
			} else {
				spec.Plan[sym] = ClassPrivate
			}
		}
	}
	return nil
}

// deriveSchema computes the KV wire schema from the key/value variable
// types and directive length clauses.
func deriveSchema(spec *KernelSpec) (kv.Schema, error) {
	d := spec.Directive
	keyKind, keyLen, err := wireKind(spec.KeySym, d.KeyLength, "key")
	if err != nil {
		return kv.Schema{}, err
	}
	valKind, valLen, err := wireKind(spec.ValSym, d.ValLength, "value")
	if err != nil {
		return kv.Schema{}, err
	}
	return kv.Schema{KeyKind: keyKind, ValKind: valKind, KeyLen: keyLen, ValLen: valLen}, nil
}

func wireKind(sym *minic.Symbol, lengthClause int, what string) (kv.Kind, int, error) {
	t := sym.Type
	switch t.Kind {
	case minic.TypeArray:
		if t.Elem.Kind != minic.TypeChar {
			return 0, 0, fmt.Errorf("compiler: %s variable %q: only char arrays are supported as byte %ss", what, sym.Name, what)
		}
		n := t.Len
		if lengthClause > 0 {
			n = lengthClause
		}
		if n <= 0 {
			return 0, 0, fmt.Errorf("compiler: %s variable %q needs a %slength clause (length not derivable)", what, sym.Name, what)
		}
		return kv.Bytes, n, nil
	case minic.TypePointer:
		if lengthClause <= 0 {
			return 0, 0, fmt.Errorf("compiler: %s variable %q is a pointer; a %slength clause is required", what, sym.Name, what)
		}
		return kv.Bytes, lengthClause, nil
	case minic.TypeChar, minic.TypeInt, minic.TypeLong:
		return kv.Int, 8, nil
	case minic.TypeFloat, minic.TypeDouble:
		return kv.Float, 8, nil
	default:
		return 0, 0, fmt.Errorf("compiler: %s variable %q has unsupported type %v", what, sym.Name, t)
	}
}
