package compiler_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/workload"
)

// TestBenchmarksLintClean asserts the paper's eight benchmarks pass the
// full static-analysis suite: nothing at warning severity or above, in any
// map, combine, or reduce program.
func TestBenchmarksLintClean(t *testing.T) {
	for _, b := range workload.All() {
		sources := map[string]string{
			"map":     b.Job.MapSrc,
			"combine": b.Job.CombineSrc,
			"reduce":  b.Job.ReduceSrc,
		}
		for stage, src := range sources {
			if src == "" {
				continue
			}
			diags := compiler.Lint(b.Code+"-"+stage+".c", src)
			if !analysis.Clean(diags) {
				var lines []string
				for _, d := range diags {
					lines = append(lines, d.String())
				}
				t.Errorf("%s %s: lint not clean:\n%s", b.Code, stage, strings.Join(lines, "\n"))
			}
		}
	}
}

// TestWordcountRedundantInitInfo pins the one expected info-level finding:
// Listing 1's defensive `linePtr = 0` is kept for paper fidelity and
// reported at info severity (HD204), which does not affect cleanliness.
func TestWordcountRedundantInitInfo(t *testing.T) {
	diags := compiler.Lint("wc-map.c", workload.WordcountMap)
	found := false
	for _, d := range diags {
		if d.Code == "HD204" {
			found = true
			if d.Severity != analysis.SevInfo {
				t.Errorf("HD204 severity = %v, want info", d.Severity)
			}
		}
	}
	if !found {
		t.Errorf("expected HD204 (redundant linePtr = 0 from Listing 1), got %v", diags)
	}
	if !analysis.Clean(diags) {
		t.Errorf("wordcount map should still lint clean, got %v", diags)
	}
}

// TestAnalyzeGoldenParity asserts that enabling analysis changes no
// compiler output: same CUDA bytes, same schema, same plan size.
func TestAnalyzeGoldenParity(t *testing.T) {
	for _, b := range workload.All() {
		for stage, src := range map[string]string{"map": b.Job.MapSrc, "combine": b.Job.CombineSrc} {
			if src == "" {
				continue
			}
			plain, err := compiler.Compile(src)
			if err != nil {
				t.Fatalf("%s %s: Compile: %v", b.Code, stage, err)
			}
			analyzed, err := compiler.CompileOpts(src, compiler.Options{Analyze: true, File: "x.c"})
			if err != nil {
				t.Fatalf("%s %s: CompileOpts: %v", b.Code, stage, err)
			}
			if plain.CUDA != analyzed.CUDA {
				t.Errorf("%s %s: CUDA output differs with Analyze enabled", b.Code, stage)
			}
			if plain.Schema != analyzed.Schema {
				t.Errorf("%s %s: schema differs with Analyze enabled", b.Code, stage)
			}
			if len(plain.Kernel.Plan) != len(analyzed.Kernel.Plan) {
				t.Errorf("%s %s: plan size differs with Analyze enabled", b.Code, stage)
			}
			if analyzed.Diagnostics == nil {
				t.Errorf("%s %s: Analyze did not fill Diagnostics", b.Code, stage)
			}
			if plain.Diagnostics != nil {
				t.Errorf("%s %s: plain compile filled Diagnostics", b.Code, stage)
			}
		}
	}
}

// TestDuplicateClauseRejected covers the ParseDirective duplicate-clause
// check added alongside the lint suite.
func TestDuplicateClauseRejected(t *testing.T) {
	if _, err := compiler.ParseDirective("mapreduce mapper key(a) key(b) value(c)"); err == nil ||
		!strings.Contains(err.Error(), "duplicate clause") {
		t.Errorf("duplicate key clause: err = %v, want duplicate-clause error", err)
	}
	if _, err := compiler.ParseDirective("mapreduce mapper combiner key(a) value(c)"); err == nil ||
		!strings.Contains(err.Error(), "more than one mapper/combiner") {
		t.Errorf("double kind: err = %v, want kind error", err)
	}
}
