// Package compiler implements the HeteroDoop source-to-source translator
// (paper §4): it parses `#pragma mapreduce` directives (Table 1), extracts
// map and combine kernel regions, classifies variables into GPU memory
// spaces per Algorithm 1, substitutes C stdio calls with GPU runtime
// intrinsics (getline→getRecord, printf→emitKV/storeKV, scanf→getKV), marks
// vectorization opportunities, and emits a CUDA-flavoured rendering of the
// generated kernels for inspection.
package compiler

import (
	"fmt"
	"strconv"
	"strings"
)

// RegionKind distinguishes the two directive-annotated region types.
type RegionKind int

// Region kinds.
const (
	RegionMapper RegionKind = iota
	RegionCombiner
)

func (k RegionKind) String() string {
	if k == RegionMapper {
		return "mapper"
	}
	return "combiner"
}

// Directive is a parsed `#pragma mapreduce ...` annotation (Table 1 of the
// paper).
type Directive struct {
	Kind RegionKind

	// Key / Value name the variables emitting KV pairs.
	Key   string
	Value string
	// KeyIn / ValueIn name the variables receiving incoming KV pairs
	// (combiner only).
	KeyIn   string
	ValueIn string

	// KeyLength / ValLength give emitted key/value lengths in bytes when
	// the variable types are not compiler-derivable; 0 means derive.
	KeyLength int
	ValLength int

	// FirstPrivate lists variables initialized before the region.
	FirstPrivate []string
	// SharedRO lists read-only variables (placed in constant or texture
	// memory by the translator).
	SharedRO []string
	// Texture lists read-only arrays forced into texture memory.
	Texture []string

	// KVPairs bounds the KV pairs emitted per record (mapper only;
	// 0 = unknown, over-allocate).
	KVPairs int
	// Blocks / Threads tune the kernel launch geometry (0 = default).
	Blocks  int
	Threads int
}

// ParseDirective parses the text of a mapreduce pragma (the part after
// `#pragma`), e.g. `mapreduce mapper key(word) value(one) keylength(30)`.
func ParseDirective(text string) (*Directive, error) {
	fields, err := splitClauses(text)
	if err != nil {
		return nil, err
	}
	if len(fields) == 0 || fields[0].name != "mapreduce" {
		return nil, fmt.Errorf("compiler: not a mapreduce pragma: %q", text)
	}
	d := &Directive{KeyLength: 0}
	seenKind := false
	seen := map[string]bool{}
	// Singleton clauses may appear at most once; a silent
	// last-occurrence-wins rule would hide directive typos.
	once := func(name string) error {
		if seen[name] {
			return fmt.Errorf("compiler: duplicate clause %q in pragma %q", name, text)
		}
		seen[name] = true
		return nil
	}
	for _, cl := range fields[1:] {
		switch cl.name {
		case "mapper", "combiner":
			if seenKind {
				return nil, fmt.Errorf("compiler: pragma %q has more than one mapper/combiner clause", text)
			}
			if cl.name == "combiner" {
				d.Kind = RegionCombiner
			} else {
				d.Kind = RegionMapper
			}
			seenKind = true
			continue
		}
		switch cl.name {
		case "key", "value", "keyin", "valuein", "keylength", "vallength",
			"kvpairs", "blocks", "threads":
			if err := once(cl.name); err != nil {
				return nil, err
			}
		}
		switch cl.name {
		case "key":
			if d.Key, err = cl.oneIdent(); err != nil {
				return nil, err
			}
		case "value":
			if d.Value, err = cl.oneIdent(); err != nil {
				return nil, err
			}
		case "keyin":
			if d.KeyIn, err = cl.oneIdent(); err != nil {
				return nil, err
			}
		case "valuein":
			if d.ValueIn, err = cl.oneIdent(); err != nil {
				return nil, err
			}
		case "keylength":
			if d.KeyLength, err = cl.oneInt(); err != nil {
				return nil, err
			}
		case "vallength":
			if d.ValLength, err = cl.oneInt(); err != nil {
				return nil, err
			}
		case "firstprivate":
			d.FirstPrivate = append(d.FirstPrivate, cl.args...)
		case "sharedRO", "sharedro":
			d.SharedRO = append(d.SharedRO, cl.args...)
		case "texture":
			d.Texture = append(d.Texture, cl.args...)
		case "kvpairs":
			if d.KVPairs, err = cl.oneInt(); err != nil {
				return nil, err
			}
		case "blocks":
			if d.Blocks, err = cl.oneInt(); err != nil {
				return nil, err
			}
		case "threads":
			if d.Threads, err = cl.oneInt(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("compiler: unknown clause %q in pragma %q", cl.name, text)
		}
	}
	if !seenKind {
		return nil, fmt.Errorf("compiler: pragma %q has neither mapper nor combiner clause", text)
	}
	if d.Key == "" {
		return nil, fmt.Errorf("compiler: %s pragma missing required key clause", d.Kind)
	}
	if d.Value == "" {
		return nil, fmt.Errorf("compiler: %s pragma missing required value clause", d.Kind)
	}
	if d.Kind == RegionCombiner {
		if d.KeyIn == "" || d.ValueIn == "" {
			return nil, fmt.Errorf("compiler: combiner pragma requires keyin and valuein clauses")
		}
	} else if d.KeyIn != "" || d.ValueIn != "" {
		return nil, fmt.Errorf("compiler: keyin/valuein are valid only on the combiner")
	}
	return d, nil
}

type clause struct {
	name string
	args []string
}

func (c clause) oneIdent() (string, error) {
	if len(c.args) != 1 {
		return "", fmt.Errorf("compiler: clause %q wants exactly one argument, got %v", c.name, c.args)
	}
	return c.args[0], nil
}

func (c clause) oneInt() (int, error) {
	s, err := c.oneIdent()
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("compiler: clause %q wants an integer literal, got %q", c.name, s)
	}
	if n < 0 {
		return 0, fmt.Errorf("compiler: clause %q must be non-negative, got %d", c.name, n)
	}
	return n, nil
}

// splitClauses tokenizes `name(arg, arg) name name(arg)` text.
func splitClauses(text string) ([]clause, error) {
	var out []clause
	i := 0
	n := len(text)
	for i < n {
		for i < n && (text[i] == ' ' || text[i] == '\t' || text[i] == ',') {
			i++
		}
		if i >= n {
			break
		}
		start := i
		for i < n && isWordChar(text[i]) {
			i++
		}
		if i == start {
			return nil, fmt.Errorf("compiler: malformed pragma near %q", text[i:])
		}
		cl := clause{name: text[start:i]}
		for i < n && text[i] == ' ' {
			i++
		}
		if i < n && text[i] == '(' {
			depth := 1
			i++
			argStart := i
			for i < n && depth > 0 {
				switch text[i] {
				case '(':
					depth++
				case ')':
					depth--
				}
				if depth > 0 {
					i++
				}
			}
			if depth != 0 {
				return nil, fmt.Errorf("compiler: unbalanced parentheses in pragma %q", text)
			}
			raw := text[argStart:i]
			i++ // closing paren
			for _, a := range strings.Split(raw, ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					cl.args = append(cl.args, a)
				}
			}
		}
		out = append(out, cl)
	}
	return out, nil
}

func isWordChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
