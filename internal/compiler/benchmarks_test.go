package compiler_test

// Translator coverage over the full benchmark suite: every Table-2 program
// must compile, classify its variables sensibly, and emit well-formed
// CUDA-flavoured kernels. Lives in an external test package to exercise
// the compiler exactly as other packages consume it.

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/kv"
	"repro/internal/workload"
)

func TestAllBenchmarkMappersTranslate(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Code, func(t *testing.T) {
			c, err := compiler.Compile(b.Job.MapSrc)
			if err != nil {
				t.Fatalf("mapper: %v", err)
			}
			if c.Kernel.Kind != compiler.RegionMapper {
				t.Fatalf("kind = %v", c.Kernel.Kind)
			}
			cuda := c.CUDA
			for _, want := range []string{"__global__ void gpu_mapper(", "mapSetup(", "mapFinish(", "getRecord(", "emitKV("} {
				if !strings.Contains(cuda, want) {
					t.Errorf("CUDA missing %q", want)
				}
			}
			for _, forbidden := range []string{"getline(", "printf(", "scanf("} {
				if strings.Contains(cuda, forbidden) {
					t.Errorf("CUDA still contains CPU call %q", forbidden)
				}
			}
			if b.Job.CombineSrc == "" {
				return
			}
			cc, err := compiler.Compile(b.Job.CombineSrc)
			if err != nil {
				t.Fatalf("combiner: %v", err)
			}
			if cc.Kernel.Kind != compiler.RegionCombiner {
				t.Fatalf("combiner kind = %v", cc.Kernel.Kind)
			}
			if !strings.Contains(cc.CUDA, "__global__ void gpu_combiner(") ||
				!strings.Contains(cc.CUDA, "getKV(") || !strings.Contains(cc.CUDA, "storeKV(") {
				t.Errorf("combiner CUDA malformed:\n%s", cc.CUDA)
			}
		})
	}
}

func TestBenchmarkSchemas(t *testing.T) {
	want := map[string]struct{ key, val kv.Kind }{
		"GR": {kv.Bytes, kv.Int},
		"HS": {kv.Int, kv.Int},
		"WC": {kv.Bytes, kv.Int},
		"HR": {kv.Int, kv.Int},
		"LR": {kv.Int, kv.Float},
		"KM": {kv.Int, kv.Bytes},
		"CL": {kv.Int, kv.Int},
		"BS": {kv.Int, kv.Float},
	}
	for _, b := range workload.All() {
		c, err := compiler.Compile(b.Job.MapSrc)
		if err != nil {
			t.Fatalf("%s: %v", b.Code, err)
		}
		w := want[b.Code]
		if c.Schema.KeyKind != w.key || c.Schema.ValKind != w.val {
			t.Errorf("%s schema = %v/%v, want %v/%v", b.Code, c.Schema.KeyKind, c.Schema.ValKind, w.key, w.val)
		}
	}
}

func TestKmeansPlacementClauses(t *testing.T) {
	c, err := compiler.Compile(workload.KmeansMap)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]compiler.VarClass{}
	for sym, cls := range c.Kernel.Plan {
		classes[sym.Name] = cls
	}
	if classes["centroids"] != compiler.ClassTexture {
		t.Errorf("centroids = %v, want texture", classes["centroids"])
	}
	if classes["K"] != compiler.ClassROScalar || classes["D"] != compiler.ClassROScalar {
		t.Errorf("K/D = %v/%v, want ROScalar", classes["K"], classes["D"])
	}
	if !strings.Contains(c.CUDA, "texture-bound") {
		t.Error("CUDA output does not mark the texture binding")
	}
}

func TestGrepSharedROPattern(t *testing.T) {
	c, err := compiler.Compile(workload.GrepMap)
	if err != nil {
		t.Fatal(err)
	}
	for sym, cls := range c.Kernel.Plan {
		if sym.Name == "pattern" && cls != compiler.ClassROArray {
			t.Errorf("pattern = %v, want ROArray (sharedRO char array)", cls)
		}
	}
}

func TestBlackScholesUserFunctionSurvives(t *testing.T) {
	c, err := compiler.Compile(workload.BlackScholesMap)
	if err != nil {
		t.Fatal(err)
	}
	// CNDF is user code called from the kernel region; the call must
	// survive translation untouched.
	if !strings.Contains(c.CUDA, "CNDF(") {
		t.Error("user helper call lost in translation")
	}
}

func TestLaunchClausesHonored(t *testing.T) {
	for _, b := range workload.All() {
		c, err := compiler.Compile(b.Job.MapSrc)
		if err != nil {
			t.Fatalf("%s: %v", b.Code, err)
		}
		if c.Kernel.Blocks != 30 || c.Kernel.Threads != 64 {
			t.Errorf("%s launch = %dx%d, want 30x64 from clauses", b.Code, c.Kernel.Blocks, c.Kernel.Threads)
		}
	}
}
