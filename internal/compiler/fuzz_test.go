package compiler

import "testing"

// FuzzParseDirective asserts the pragma-clause parser never panics and
// never returns a directive together with an error.
func FuzzParseDirective(f *testing.F) {
	f.Add("#pragma mapreduce mapper key(k) value(v)")
	f.Add("#pragma mapreduce mapper key(word) value(one) keylength(30) kvpairs(48) blocks(8) threads(32)")
	f.Add("#pragma mapreduce combiner key(pk) keyin(k) value(pv) valuein(v) firstprivate(pk, pv)")
	f.Add("#pragma mapreduce mapper key(k) value(v) sharedRO(M) texture(tbl)")
	f.Add("#pragma mapreduce mapper key(k) key(k) value(v)")
	f.Add("#pragma mapreduce mapper key(k value(v)")
	f.Add("#pragma omp parallel for")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := ParseDirective(text)
		if err != nil && d != nil {
			t.Fatalf("both directive and error for %q: %v", text, err)
		}
	})
}
