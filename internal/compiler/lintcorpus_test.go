package compiler_test

import (
	"strings"
	"testing"

	"repro/internal/compiler"
)

// This file is the hdlint bug corpus: one minimal MiniC program per
// diagnostic code, asserted to trigger exactly that diagnostic and nothing
// else, plus a fixed twin asserted to lint completely clean. Together with
// the benchmark cleanliness test this pins both directions of every check.

// cleanMapper is the minimal lint-clean mapper; corpus entries perturb it.
func cleanMapper(pragma string) string {
	return `int main() {
	char *line; size_t n = 100; int read, k, v;
	line = (char*) malloc(100);
	` + pragma + `
	while ((read = getline(&line, &n, stdin)) != -1) {
		k = 1; v = 1;
		printf("%d\t%d\n", k, v);
	}
	free(line);
	return 0;
}`
}

// cleanCombiner is the minimal lint-clean combiner (accumulating value).
const cleanCombiner = `int main() {
	int key, val, pk, pv, read;
	pk = 0; pv = 0;
	#pragma mapreduce combiner key(pk) value(pv) keyin(key) valuein(val) firstprivate(pk, pv)
	{
		while ((read = scanf("%d %d", &key, &val)) == 2) {
			pk = key;
			pv = pv + val;
		}
		printf("%d\t%d\n", pk, pv);
	}
	return 0;
}`

const basePragma = "#pragma mapreduce mapper key(k) value(v)"

var lintCorpus = []struct {
	code  string
	src   string // triggers exactly one diagnostic, with this code
	clean string // the fixed twin: zero diagnostics
}{
	{
		code:  "HD001",
		src:   `int main() { return x; }`,
		clean: `int main() { return 0; }`,
	},
	{
		// A mapper on a for loop passes every source check but cannot be
		// translated (region-shape rule).
		code: "HD002",
		src: `int main() {
	int read, k, v;
	#pragma mapreduce mapper key(k) value(v)
	for (read = 0; read < 3; read++) {
		k = read; v = 1;
		printf("%d\t%d\n", k, v);
	}
	return 0;
}`,
		clean: cleanMapper(basePragma),
	},
	{
		code:  "HD101",
		src:   cleanMapper("#pragma mapreduce mapper key(k) value(v) bogus(k)"),
		clean: cleanMapper(basePragma),
	},
	{
		code:  "HD102",
		src:   cleanMapper("#pragma mapreduce mapper key(k) key(k) value(v)"),
		clean: cleanMapper(basePragma),
	},
	{
		code:  "HD103",
		src:   cleanMapper("#pragma mapreduce key(k) value(v)"),
		clean: cleanMapper(basePragma),
	},
	{
		code:  "HD104",
		src:   cleanMapper("#pragma mapreduce mapper key(k)"),
		clean: cleanMapper(basePragma),
	},
	{
		code:  "HD105",
		src:   cleanMapper("#pragma mapreduce mapper key(k) value(v) keyin(k)"),
		clean: cleanMapper(basePragma),
	},
	{
		code:  "HD106",
		src:   cleanMapper("#pragma mapreduce mapper key(zzz) value(v)"),
		clean: cleanMapper(basePragma),
	},
	{
		code: "HD107",
		src: `int main() {
	char *line; size_t n = 100; char k[30]; int read, v;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(k) value(v) keylength(64)
	while ((read = getline(&line, &n, stdin)) != -1) {
		strcpy(k, "a");
		v = 1;
		printf("%s\t%d\n", k, v);
	}
	free(line);
	return 0;
}`,
		clean: `int main() {
	char *line; size_t n = 100; char k[30]; int read, v;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(k) value(v) keylength(30)
	while ((read = getline(&line, &n, stdin)) != -1) {
		strcpy(k, "a");
		v = 1;
		printf("%s\t%d\n", k, v);
	}
	free(line);
	return 0;
}`,
	},
	{
		// printf emits a file-scope global where the directive declares
		// key(k): the wire output silently disagrees with the schema.
		code: "HD108",
		src: `int other = 3;
int main() {
	char *line; size_t n = 100; int read, k, v;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(k) value(v)
	while ((read = getline(&line, &n, stdin)) != -1) {
		k = 1; v = k + 1;
		printf("%d\t%d\n", other, v);
	}
	free(line);
	return 0;
}`,
		clean: `int other = 3;
int main() {
	char *line; size_t n = 100; int read, k, v;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(k) value(v)
	while ((read = getline(&line, &n, stdin)) != -1) {
		k = 1; v = k + 1;
		printf("%d\t%d\n", k, v);
	}
	free(line);
	return 0;
}`,
	},
	{
		// The combiner's output value is overwritten, never accumulated:
		// it would emit the last input instead of the combined one.
		code: "HD109",
		src: `int main() {
	int key, val, pk, pv, read;
	pk = 0; pv = 0;
	#pragma mapreduce combiner key(pk) value(pv) keyin(key) valuein(val) firstprivate(pk, pv)
	{
		while ((read = scanf("%d %d", &key, &val)) == 2) {
			pk = key;
			pv = val;
		}
		printf("%d\t%d\n", pk, pv);
	}
	return 0;
}`,
		clean: cleanCombiner,
	},
	{
		code: "HD110",
		src: `int gk = 1;
int gv = 2;
int main() {
	char *line; size_t n = 100; int read;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(gk) value(gv)
	while ((read = getline(&line, &n, stdin)) != -1) {
	}
	free(line);
	return 0;
}`,
		clean: `int gk = 1;
int gv = 2;
int main() {
	char *line; size_t n = 100; int read;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(gk) value(gv)
	while ((read = getline(&line, &n, stdin)) != -1) {
		printf("%d\t%d\n", gk, gv);
	}
	free(line);
	return 0;
}`,
	},
	{
		code: "HD201",
		src: `int main() {
	int x;
	int y;
	y = x + 1;
	return y;
}`,
		clean: `int main() {
	int x = 3;
	int y;
	y = x + 1;
	return y;
}`,
	},
	{
		code: "HD202",
		src: `int main() {
	int a, b;
	b = 2;
	a = b + 1;
	a = 5;
	return a;
}`,
		clean: `int main() {
	int a, b;
	b = 2;
	a = b + 1;
	return a;
}`,
	},
	{
		code: "HD203",
		src: `int main() {
	int unused;
	return 0;
}`,
		clean: `int main() {
	int used = 1;
	return used;
}`,
	},
	{
		code: "HD204",
		src: `int main() {
	int x;
	x = 0;
	x = 5;
	return x;
}`,
		clean: `int main() {
	int x;
	x = 5;
	return x;
}`,
	},
	{
		// total carries a running sum across records; per-thread
		// privatization would silently compute partial sums.
		code: "HD301",
		src: `int main() {
	char *line; size_t n = 100; int read, k, v, total;
	line = (char*) malloc(100);
	total = 0;
	#pragma mapreduce mapper key(k) value(v)
	while ((read = getline(&line, &n, stdin)) != -1) {
		total = total + read;
		k = 1; v = total;
		printf("%d\t%d\n", k, v);
	}
	free(line);
	return 0;
}`,
		clean: `int main() {
	char *line; size_t n = 100; int read, k, v, total;
	line = (char*) malloc(100);
	total = 0;
	#pragma mapreduce mapper key(k) value(v) firstprivate(total)
	while ((read = getline(&line, &n, stdin)) != -1) {
		total = total + read;
		k = 1; v = total;
		printf("%d\t%d\n", k, v);
	}
	free(line);
	return 0;
}`,
	},
	{
		code: "HD302",
		src: `int main() {
	char *line; size_t n = 100; char pat[8]; int read, k, v;
	line = (char*) malloc(100);
	strcpy(pat, "x");
	#pragma mapreduce mapper key(k) value(v) sharedRO(pat)
	while ((read = getline(&line, &n, stdin)) != -1) {
		pat[0] = 'y';
		k = 1; v = 1;
		printf("%d\t%d\n", k, v);
	}
	free(line);
	return 0;
}`,
		clean: `int main() {
	char *line; size_t n = 100; char pat[8]; int read, k, v;
	line = (char*) malloc(100);
	strcpy(pat, "x");
	#pragma mapreduce mapper key(k) value(v) sharedRO(pat)
	while ((read = getline(&line, &n, stdin)) != -1) {
		k = pat[0]; v = 1;
		printf("%d\t%d\n", k, v);
	}
	free(line);
	return 0;
}`,
	},
	{
		// The KV read sits under an if inside the loop body: after
		// translation, getKV would run under thread-divergent control flow.
		code: "HD401",
		src: `int main() {
	int key, val, pk, pv, read, flag;
	pk = 0; pv = 0; flag = 1;
	#pragma mapreduce combiner key(pk) value(pv) keyin(key) valuein(val) firstprivate(pk, pv)
	{
		while (flag) {
			if ((read = scanf("%d %d", &key, &val)) != 2) {
				flag = 0;
			} else {
				pk = key;
				pv = pv + val;
			}
		}
		printf("%d\t%d\n", pk, pv);
	}
	return 0;
}`,
		clean: cleanCombiner,
	},
	{
		// A file-scope global is written from the region; Algorithm 1
		// places globals in read-only constant memory, so every thread
		// would race and the result never reaches the host.
		code: "HD402",
		src: `int total = 0;
int main() {
	char *line; size_t n = 100; int read, k, v;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(k) value(v)
	while ((read = getline(&line, &n, stdin)) != -1) {
		total = read;
		k = 1; v = 1;
		printf("%d\t%d\n", k, v);
	}
	free(line);
	return 0;
}`,
		clean: `int total = 7;
int main() {
	char *line; size_t n = 100; int read, k, v;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(k) value(v)
	while ((read = getline(&line, &n, stdin)) != -1) {
		k = 1; v = total;
		printf("%d\t%d\n", k, v);
	}
	free(line);
	return 0;
}`,
	},
	{
		code: "HD403",
		src: `double cent[4];
int main() {
	char *line; size_t n = 100; int read, k; double v;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(k) value(v) texture(cent)
	while ((read = getline(&line, &n, stdin)) != -1) {
		k = 1;
		v = cent[7];
		printf("%d\t%f\n", k, v);
	}
	free(line);
	return 0;
}`,
		clean: `double cent[4];
int main() {
	char *line; size_t n = 100; int read, k; double v;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(k) value(v) texture(cent)
	while ((read = getline(&line, &n, stdin)) != -1) {
		k = 1;
		v = cent[2];
		printf("%d\t%f\n", k, v);
	}
	free(line);
	return 0;
}`,
	},
	{
		code: "HD501",
		src: `int main() {
	char *line; size_t n = 100; int read, k, v;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(k) value(v)
	while ((read = getline(&line, &n, stdin)) != -1) {
		k = 1; v = 1;
		printf("%d\t%d\n", k, v);
		free(line);
	}
	return 0;
}`,
		clean: cleanMapper(basePragma),
	},
	{
		code: "HD502",
		src: `int boom(int x) {
	if (x > 3) exit(1);
	return x + 1;
}
int main() {
	char *line; size_t n = 100; int read, k, v;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(k) value(v)
	while ((read = getline(&line, &n, stdin)) != -1) {
		k = 1; v = boom(read);
		printf("%d\t%d\n", k, v);
	}
	free(line);
	return 0;
}`,
		clean: `int calm(int x) {
	return x + 1;
}
int main() {
	char *line; size_t n = 100; int read, k, v;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(k) value(v)
	while ((read = getline(&line, &n, stdin)) != -1) {
		k = 1; v = calm(read);
		printf("%d\t%d\n", k, v);
	}
	free(line);
	return 0;
}`,
	},
	{
		// A non-literal condition SCCP proves constant. The clean twin gets
		// its value from a call, which the lattice cannot see through.
		code: "HD601",
		src: `int main() {
	int n = 3;
	if (n > 2) { printf("big\n"); }
	return 0;
}`,
		clean: `int opaque() { return 3; }
int main() {
	int n = opaque();
	if (n > 2) { printf("big\n"); }
	return 0;
}`,
	},
	{
		// Code after an unconditional return never executes.
		code: "HD602",
		src: `int main() {
	printf("live\n");
	return 0;
	printf("dead\n");
	return 1;
}`,
		clean: `int main() {
	printf("live\n");
	return 0;
}`,
	},
	{
		// The second initializer recomputes the first, value-numbered over
		// SSA. The clean twin perturbs one operand.
		code: "HD603",
		src: `int opaque() { return 3; }
int main() {
	int v = opaque();
	int a = v * 10 + 1;
	int b = v * 10 + 1;
	printf("%d %d\n", a, b);
	return 0;
}`,
		clean: `int opaque() { return 3; }
int main() {
	int v = opaque();
	int a = v * 10 + 1;
	int b = v * 10 + 2;
	printf("%d %d\n", a, b);
	return 0;
}`,
	},
	{
		// The loop prints a value no iteration changes.
		code: "HD604",
		src: `int opaque() { return 3; }
int main() {
	int k = opaque();
	int i = 0;
	while (i < 3) {
		printf("%d\n", k);
		i = i + 1;
	}
	return 0;
}`,
		clean: `int opaque() { return 3; }
int main() {
	int k = opaque();
	int i = 0;
	while (i < 3) {
		printf("%d\n", k + i);
		i = i + 1;
	}
	return 0;
}`,
	},
	{
		// A constant subscript past the end of a fixed array (the source
		// level generalization of HD403, which only sees kernel arrays).
		code: "HD605",
		src: `int main() {
	int a[4];
	a[0] = 5;
	printf("%d\n", a[7]);
	return 0;
}`,
		clean: `int main() {
	int a[4];
	a[0] = 5;
	printf("%d\n", a[0]);
	return 0;
}`,
	},
}

func TestLintCorpus(t *testing.T) {
	for _, c := range lintCorpus {
		t.Run(c.code, func(t *testing.T) {
			diags := compiler.Lint(c.code+".c", c.src)
			if len(diags) != 1 {
				var lines []string
				for _, d := range diags {
					lines = append(lines, d.String())
				}
				t.Fatalf("got %d diagnostics, want exactly 1 (%s):\n%s",
					len(diags), c.code, strings.Join(lines, "\n"))
			}
			if diags[0].Code != c.code {
				t.Fatalf("got %s, want %s: %s", diags[0].Code, c.code, diags[0])
			}
			if diags[0].Pos.Line == 0 && c.code != "HD001" {
				t.Errorf("%s: diagnostic carries no position: %s", c.code, diags[0])
			}
			clean := compiler.Lint(c.code+"-clean.c", c.clean)
			if len(clean) != 0 {
				var lines []string
				for _, d := range clean {
					lines = append(lines, d.String())
				}
				t.Errorf("clean twin not clean:\n%s", strings.Join(lines, "\n"))
			}
		})
	}
}

// TestLintCorpusCoversCatalog keeps the corpus and the catalog in sync:
// every documented code must have a corpus entry.
func TestLintCorpusCoversCatalog(t *testing.T) {
	covered := map[string]bool{}
	for _, c := range lintCorpus {
		covered[c.code] = true
	}
	for _, info := range compiler.LintCatalog() {
		if !covered[info.Code] {
			t.Errorf("catalog code %s has no corpus entry", info.Code)
		}
	}
}
