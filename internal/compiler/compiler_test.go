package compiler

import (
	"strings"
	"testing"

	"repro/internal/kv"
	"repro/internal/minic"
)

const wordcountMapSrc = `
int getWord(char *line, int offset, char *word, int read, int maxw) {
	int i = offset, j = 0;
	while (i < read && (line[i] == ' ' || line[i] == '\n' || line[i] == '\t')) i++;
	while (i < read && line[i] != ' ' && line[i] != '\n' && line[i] != '\t' && j < maxw - 1) {
		word[j] = line[i];
		i++; j++;
	}
	if (j == 0) return -1;
	word[j] = '\0';
	return i - offset;
}
int main() {
	char word[30], *line;
	size_t nbytes = 10000;
	int read, linePtr, offset, one;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(word) value(one) keylength(30) kvpairs(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		linePtr = 0;
		offset = 0;
		one = 1;
		while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
			printf("%s\t%d\n", word, one);
			offset += linePtr;
		}
	}
	free(line);
	return 0;
}`

const wordcountCombineSrc = `
int main() {
	char word[30], prevWord[30];
	prevWord[0] = '\0';
	int count, val, read;
	count = 0;
	#pragma mapreduce combiner key(prevWord) value(count) keyin(word) valuein(val) keylength(30) firstprivate(prevWord, count)
	{
		while ((read = scanf("%s %d", word, &val)) == 2) {
			if (strcmp(word, prevWord) == 0) {
				count += val;
			} else {
				if (prevWord[0] != '\0')
					printf("%s\t%d\n", prevWord, count);
				strcpy(prevWord, word);
				count = val;
			}
		}
		if (prevWord[0] != '\0')
			printf("%s\t%d\n", prevWord, count);
	}
	return 0;
}`

func TestParseDirectiveMapper(t *testing.T) {
	d, err := ParseDirective("mapreduce mapper key(word) value(one) keylength(30) vallength(4) kvpairs(16) blocks(32) threads(64)")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != RegionMapper {
		t.Errorf("kind = %v", d.Kind)
	}
	if d.Key != "word" || d.Value != "one" {
		t.Errorf("key/value = %q/%q", d.Key, d.Value)
	}
	if d.KeyLength != 30 || d.ValLength != 4 {
		t.Errorf("lengths = %d/%d", d.KeyLength, d.ValLength)
	}
	if d.KVPairs != 16 || d.Blocks != 32 || d.Threads != 64 {
		t.Errorf("kvpairs/blocks/threads = %d/%d/%d", d.KVPairs, d.Blocks, d.Threads)
	}
}

func TestParseDirectiveCombiner(t *testing.T) {
	d, err := ParseDirective("mapreduce combiner key(prevWord) value(count) keyin(word) valuein(val) firstprivate(prevWord, count)")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != RegionCombiner {
		t.Errorf("kind = %v", d.Kind)
	}
	if d.KeyIn != "word" || d.ValueIn != "val" {
		t.Errorf("keyin/valuein = %q/%q", d.KeyIn, d.ValueIn)
	}
	if len(d.FirstPrivate) != 2 || d.FirstPrivate[0] != "prevWord" || d.FirstPrivate[1] != "count" {
		t.Errorf("firstprivate = %v", d.FirstPrivate)
	}
}

func TestParseDirectiveSharedROAndTexture(t *testing.T) {
	d, err := ParseDirective("mapreduce mapper key(k) value(v) sharedRO(a, b) texture(centroids)")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SharedRO) != 2 || len(d.Texture) != 1 {
		t.Errorf("sharedRO=%v texture=%v", d.SharedRO, d.Texture)
	}
}

func TestParseDirectiveErrors(t *testing.T) {
	bad := []string{
		"mapreduce key(a) value(b)",                              // no mapper/combiner
		"mapreduce mapper value(b)",                              // no key
		"mapreduce mapper key(a)",                                // no value
		"mapreduce combiner key(a) value(b)",                     // no keyin/valuein
		"mapreduce mapper key(a) value(b) keyin(c) valuein(d)",   // keyin on mapper
		"mapreduce mapper key(a) value(b) bogus(c)",              // unknown clause
		"mapreduce mapper key(a) value(b) keylength(notanumber)", // non-int
		"mapreduce mapper key(a) value(b) keylength(-3)",         // negative
		"omp parallel for",                                       // not mapreduce
		"mapreduce mapper key(a, b) value(c)",                    // multi-arg key
	}
	for _, text := range bad {
		if _, err := ParseDirective(text); err == nil {
			t.Errorf("ParseDirective(%q) succeeded, want error", text)
		}
	}
}

func TestCompileWordcountMapper(t *testing.T) {
	c, err := Compile(wordcountMapSrc)
	if err != nil {
		t.Fatal(err)
	}
	spec := c.Kernel
	if spec.Kind != RegionMapper {
		t.Fatalf("kind = %v", spec.Kind)
	}
	if spec.KVPairs != 64 {
		t.Errorf("kvpairs = %d", spec.KVPairs)
	}
	if spec.Blocks != DefaultBlocks || spec.Threads != DefaultThreads {
		t.Errorf("launch = %dx%d", spec.Blocks, spec.Threads)
	}
	// Schema: char[30] key, int value.
	if c.Schema.KeyKind != kv.Bytes || c.Schema.KeyLen != 30 {
		t.Errorf("key schema = %v/%d", c.Schema.KeyKind, c.Schema.KeyLen)
	}
	if c.Schema.ValKind != kv.Int {
		t.Errorf("val schema = %v", c.Schema.ValKind)
	}
	if !spec.VectorKey {
		t.Error("array key should be vector-eligible")
	}
	if spec.VectorVal {
		t.Error("scalar value should not be vector-eligible")
	}
}

func TestCompileRewritesCalls(t *testing.T) {
	c, err := Compile(wordcountMapSrc)
	if err != nil {
		t.Fatal(err)
	}
	names := callNames(c.Kernel.Region)
	if names["getline"] > 0 {
		t.Error("getline not replaced in GPU region")
	}
	if names["getRecord"] != 1 {
		t.Errorf("getRecord calls = %d, want 1", names["getRecord"])
	}
	if names["printf"] > 0 {
		t.Error("printf not replaced in GPU region")
	}
	if names["emitKV"] != 1 {
		t.Errorf("emitKV calls = %d, want 1", names["emitKV"])
	}
	// Host program untouched.
	hostPragmas := minic.FindPragmas(c.HostProg)
	hostNames := callNames(hostPragmas[0].Body)
	if hostNames["getline"] != 1 || hostNames["printf"] != 1 {
		t.Errorf("host program was mutated: %v", hostNames)
	}
}

func TestCompileCombinerRewrites(t *testing.T) {
	c, err := Compile(wordcountCombineSrc)
	if err != nil {
		t.Fatal(err)
	}
	names := callNames(c.Kernel.Region)
	if names["scanf"] > 0 || names["getKV"] != 1 {
		t.Errorf("scanf rewrite wrong: %v", names)
	}
	if names["printf"] > 0 || names["storeKV"] != 2 {
		t.Errorf("printf rewrite wrong: %v", names)
	}
	if names["strcmp"] > 0 || names["strcmpGPU"] != 1 {
		t.Errorf("strcmp rewrite wrong: %v", names)
	}
	if names["strcpy"] > 0 || names["strcpyGPU"] != 1 {
		t.Errorf("strcpy rewrite wrong: %v", names)
	}
}

func TestVariableClassificationMapper(t *testing.T) {
	c, err := Compile(wordcountMapSrc)
	if err != nil {
		t.Fatal(err)
	}
	classes := classByName(c.Kernel)
	// word, one, read, linePtr, offset are written first -> private.
	for _, name := range []string{"word", "one", "read", "linePtr", "offset"} {
		if classes[name] != ClassPrivate {
			t.Errorf("%s class = %v, want private", name, classes[name])
		}
	}
	// line has its address taken by getRecord (written) -> private.
	if classes["line"] != ClassPrivate {
		t.Errorf("line class = %v, want private", classes["line"])
	}
}

func TestVariableClassificationCombiner(t *testing.T) {
	c, err := Compile(wordcountCombineSrc)
	if err != nil {
		t.Fatal(err)
	}
	classes := classByName(c.Kernel)
	if classes["prevWord"] != ClassFirstPrivate {
		t.Errorf("prevWord class = %v, want firstprivate", classes["prevWord"])
	}
	if classes["count"] != ClassFirstPrivate {
		t.Errorf("count class = %v, want firstprivate", classes["count"])
	}
	// word receives input KVs (first access is a write via &/getKV).
	if classes["word"] != ClassPrivate {
		t.Errorf("word class = %v, want private", classes["word"])
	}
}

func TestAutoFirstPrivateDetection(t *testing.T) {
	src := `
int main() {
	int seed = 42;
	int x, read;
	char *line;
	size_t n = 100;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(x) value(x)
	while ((read = getline(&line, &n, stdin)) != -1) {
		x = seed + read;
		printf("%d\t%d\n", x, x);
	}
	return 0;
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	classes := classByName(c.Kernel)
	// seed is read before any write -> auto firstprivate.
	if classes["seed"] != ClassFirstPrivate {
		t.Errorf("seed class = %v, want auto firstprivate", classes["seed"])
	}
}

func TestSharedROAndTextureClassification(t *testing.T) {
	src := `
int main() {
	double centroids[64];
	int k = 8;
	int x, read;
	char *line;
	size_t n = 100;
	line = (char*) malloc(100);
	for (int i = 0; i < 64; i++) centroids[i] = i;
	#pragma mapreduce mapper key(x) value(x) sharedRO(k) texture(centroids)
	while ((read = getline(&line, &n, stdin)) != -1) {
		x = (int) centroids[read % 64] + k;
		printf("%d\t%d\n", x, x);
	}
	return 0;
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	classes := classByName(c.Kernel)
	if classes["k"] != ClassROScalar {
		t.Errorf("k class = %v, want ROScalar", classes["k"])
	}
	if classes["centroids"] != ClassTexture {
		t.Errorf("centroids class = %v, want Texture", classes["centroids"])
	}
}

func TestTextureOnScalarRejected(t *testing.T) {
	src := `
int main() {
	int k = 8;
	int x, read;
	char *line;
	size_t n = 100;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(x) value(x) texture(k)
	while ((read = getline(&line, &n, stdin)) != -1) {
		x = k;
		printf("%d\t%d\n", x, x);
	}
	return 0;
}`
	if _, err := Compile(src); err == nil || !strings.Contains(err.Error(), "texture") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no pragma", `int main() { return 0; }`, "no mapreduce pragma"},
		{"unknown key var", `
int main() {
	int x, read; char *line; size_t n = 10;
	line = (char*) malloc(10);
	#pragma mapreduce mapper key(nothere) value(x)
	while ((read = getline(&line, &n, stdin)) != -1) { x = 1; printf("%d\t%d\n", x, x); }
	return 0;
}`, "unknown variable"},
		{"mapper on non-loop", `
int main() {
	int x = 0;
	#pragma mapreduce mapper key(x) value(x)
	{ x = 1; }
	return 0;
}`, "while loop"},
		{"mapper without records", `
int main() {
	int x = 0;
	#pragma mapreduce mapper key(x) value(x)
	while (x < 3) { x++; printf("%d\t%d\n", x, x); }
	return 0;
}`, "never reads records"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestTwoPragmasRejected(t *testing.T) {
	src := `
int main() {
	int x, read; char *line; size_t n = 10;
	line = (char*) malloc(10);
	#pragma mapreduce mapper key(x) value(x)
	while ((read = getline(&line, &n, stdin)) != -1) { x = 1; printf("%d\t%d\n", x, x); }
	#pragma mapreduce mapper key(x) value(x)
	while ((read = getline(&line, &n, stdin)) != -1) { x = 2; printf("%d\t%d\n", x, x); }
	return 0;
}`
	if _, err := Compile(src); err == nil || !strings.Contains(err.Error(), "2 mapreduce pragmas") {
		t.Fatalf("err = %v", err)
	}
}

func TestSchemaNumericKinds(t *testing.T) {
	src := `
int main() {
	int bin; double price;
	int read; char *line; size_t n = 100;
	line = (char*) malloc(100);
	#pragma mapreduce mapper key(bin) value(price)
	while ((read = getline(&line, &n, stdin)) != -1) {
		bin = read % 10;
		price = read * 1.5;
		printf("%d\t%f\n", bin, price);
	}
	return 0;
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Schema.KeyKind != kv.Int {
		t.Errorf("key kind = %v", c.Schema.KeyKind)
	}
	if c.Schema.ValKind != kv.Float {
		t.Errorf("val kind = %v", c.Schema.ValKind)
	}
	if c.Kernel.VectorKey || c.Kernel.VectorVal {
		t.Error("numeric key/value must not be vector-eligible")
	}
}

func TestEmitCUDAMapperShape(t *testing.T) {
	c, err := Compile(wordcountMapSrc)
	if err != nil {
		t.Fatal(err)
	}
	cuda := c.CUDA
	for _, want := range []string{
		"__global__ void gpu_mapper(",
		"char *ip", "int *recordLocator", "storesPerThread", "devKvCount",
		"mapSetup(", "mapFinish(",
		"getRecord(", "emitKV(",
		"__shared__ unsigned int recordIndex;",
		"char gpu_word[30];",
	} {
		if !strings.Contains(cuda, want) {
			t.Errorf("CUDA output missing %q:\n%s", want, cuda)
		}
	}
	if strings.Contains(cuda, "getline(") || strings.Contains(cuda, "printf(") {
		t.Errorf("CUDA output still contains CPU stdio calls:\n%s", cuda)
	}
}

func TestEmitCUDACombinerShape(t *testing.T) {
	c, err := Compile(wordcountCombineSrc)
	if err != nil {
		t.Fatal(err)
	}
	cuda := c.CUDA
	for _, want := range []string{
		"__global__ void gpu_combiner(",
		"combineSetup(",
		"__shared__ char gpu_prevWord[WARPS_IN_TB][30];",
		"getKV(", "storeKV(", "strcmpGPU(", "strcpyGPU(",
		"gpu_prevWord[warpID]",
	} {
		if !strings.Contains(cuda, want) {
			t.Errorf("CUDA output missing %q:\n%s", want, cuda)
		}
	}
}

func TestCompileIsRepeatable(t *testing.T) {
	a, err := Compile(wordcountMapSrc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(wordcountMapSrc)
	if err != nil {
		t.Fatal(err)
	}
	if a.CUDA != b.CUDA {
		t.Error("CUDA emission is not deterministic")
	}
}

// callNames counts call expressions by name inside a statement tree.
func callNames(s minic.Stmt) map[string]int {
	out := map[string]int{}
	walkExprs(s, func(e minic.Expr) {
		if c, ok := e.(*minic.Call); ok {
			out[c.Name]++
		}
	})
	return out
}

func classByName(spec *KernelSpec) map[string]VarClass {
	out := map[string]VarClass{}
	for sym, cls := range spec.Plan {
		out[sym.Name] = cls
	}
	return out
}
