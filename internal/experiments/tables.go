package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// Table2Row is one benchmark's row of the paper's Table 2.
type Table2Row struct {
	Code, Name, Nature string
	PctMapCombine      int
	Combiner           bool
	ReduceTasksC1      int
	ReduceTasksC2      int
	MapTasksC1         int
	MapTasksC2         int
	InputGBC1          float64
	InputGBC2          float64
}

// Table2 reproduces Table 2 from the benchmark registry.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, b := range workload.All() {
		rows = append(rows, Table2Row{
			Code: b.Code, Name: b.Name, Nature: b.Nature,
			PctMapCombine: b.PctMapCombine, Combiner: b.HasCombiner,
			ReduceTasksC1: b.ReduceTasksC1, ReduceTasksC2: b.ReduceTasksC2,
			MapTasksC1: b.MapTasksC1, MapTasksC2: b.MapTasksC2,
			InputGBC1: b.InputGBC1, InputGBC2: b.InputGBC2,
		})
	}
	return rows
}

// FormatTable2 renders Table 2 as aligned text.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Description of the Benchmarks Used\n")
	fmt.Fprintf(&b, "%-22s %5s %-8s %-8s %9s %9s %9s %9s %8s %8s\n",
		"Benchmark", "%M+C", "Nature", "Combiner", "Red.C1", "Red.C2", "Maps.C1", "Maps.C2", "GB.C1", "GB.C2")
	for _, r := range rows {
		c2 := func(n int) string {
			if r.MapTasksC2 == 0 && n == 0 {
				return "NA"
			}
			return fmt.Sprint(n)
		}
		gb2 := "NA"
		if r.InputGBC2 > 0 {
			gb2 = fmt.Sprintf("%.0f", r.InputGBC2)
		}
		comb := "No"
		if r.Combiner {
			comb = "Yes"
		}
		fmt.Fprintf(&b, "%-22s %5d %-8s %-8s %9d %9s %9d %9s %8.0f %8s\n",
			fmt.Sprintf("%s (%s)", r.Name, r.Code), r.PctMapCombine, r.Nature, comb,
			r.ReduceTasksC1, fmt.Sprint(r.ReduceTasksC2), r.MapTasksC1, c2(r.MapTasksC2),
			r.InputGBC1, gb2)
	}
	return b.String()
}

// Table3Row is one configuration row of the paper's Table 3.
type Table3Row struct {
	Item     string
	Cluster1 string
	Cluster2 string
}

// Table3 reproduces Table 3 from the cluster setups.
func Table3() []Table3Row {
	c1, c2 := cluster.Cluster1(), cluster.Cluster2()
	row := func(item, a, b string) Table3Row { return Table3Row{item, a, b} }
	return []Table3Row{
		row("#nodes", fmt.Sprintf("%d (+1 master)", c1.Slaves), fmt.Sprintf("%d (+1 master)", c2.Slaves)),
		row("CPU", "Intel Xeon E5-2680", "Intel Xeon X5560"),
		row("#CPU cores", fmt.Sprint(c1.Node.MapSlots), fmt.Sprint(12)),
		row("GPU(s)", c1.Device.Name, fmt.Sprintf("3x %s", c2.Device.Name)),
		row("Disk", "500GB", "none (in-memory)"),
		row("Communication", "FDR InfiniBand", "QDR InfiniBand"),
		row("Hadoop Version", "Hadoop 1.2.1 (simulated)", "Hadoop 1.2.1 (simulated)"),
		row("HDFS Block Size", fmt.Sprintf("256MB (scaled: %dKB)", c1.HDFS.BlockSize>>10), fmt.Sprintf("256MB (scaled: %dKB)", c2.HDFS.BlockSize>>10)),
		row("HDFS Replication Factor", fmt.Sprint(c1.HDFS.Replication), fmt.Sprint(c2.HDFS.Replication)),
		row("Max. Map Slots Per Node", fmt.Sprintf("%d (+1 for GPU runs)", c1.Node.MapSlots), fmt.Sprintf("%d (+1/GPU for GPU runs)", c2.Node.MapSlots)),
		row("Max. Reduce Slots Per Node", fmt.Sprint(c1.Node.ReduceSlots), fmt.Sprint(c2.Node.ReduceSlots)),
		row("Speculative Execution", "Off", "Off"),
		row("% map tasks before reduce", "20", "20"),
	}
}

// FormatTable3 renders Table 3 as aligned text.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Cluster Setups Used\n")
	fmt.Fprintf(&b, "%-28s %-28s %-28s\n", "", "Cluster1", "Cluster2")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %-28s %-28s\n", r.Item, r.Cluster1, r.Cluster2)
	}
	return b.String()
}
