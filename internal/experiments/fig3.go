package experiments

import (
	"fmt"

	"repro/internal/mr"
	"repro/internal/obs"
)

// Fig3Result reproduces the Figure-3 thought experiment: 19 equal tasks,
// one node with 2 CPU slots and 1 GPU that is 6x faster.
type Fig3Result struct {
	Tasks          int
	CPUSlots       int
	GPUs           int
	GPUSpeedup     float64
	GPUFirstTime   float64
	TailTime       float64
	ForcedGPUTasks int
}

// Improvement is the makespan reduction of tail scheduling.
func (r Fig3Result) Improvement() float64 {
	if r.GPUFirstTime == 0 {
		return 0
	}
	return r.GPUFirstTime / r.TailTime
}

// Fig3 runs the two schedulers on the canonical scenario. Only cfg.Obs
// and cfg.Workers/cfg.Pool are consulted: the scenario's task mix is fixed
// by the paper. The two runs execute concurrently when workers allow.
func Fig3(cfg Config) (Fig3Result, error) {
	const (
		tasks   = 19
		cpuTask = 60.0
		gpuTask = 10.0
	)
	exec := func() *mr.SampledExecutor {
		return &mr.SampledExecutor{
			Splits: tasks, Reducers: 0, Slaves: 1,
			CPUDur: []float64{cpuTask}, GPUDur: []float64{gpuTask},
		}
	}
	pool, release := cfg.pool()
	defer release()
	scheds := []mr.SchedulerKind{mr.GPUFirst, mr.TailSched}
	stats, err := parallelRuns(pool, cfg.Obs, len(scheds),
		func(i int, rec *obs.Recorder) (*mr.JobStats, error) {
			s := scheds[i]
			return mr.RunJob(mr.ClusterConfig{
				Name:   "fig3-" + s.String(),
				Slaves: 1, Node: mr.NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
				Scheduler: s, HeartbeatSec: 0.5,
				Obs: rec,
			}, exec())
		})
	if err != nil {
		return Fig3Result{}, err
	}
	gf, tail := stats[0], stats[1]
	return Fig3Result{
		Tasks: tasks, CPUSlots: 2, GPUs: 1, GPUSpeedup: cpuTask / gpuTask,
		GPUFirstTime: gf.Makespan, TailTime: tail.Makespan,
		ForcedGPUTasks: tail.ForcedGPUTasks,
	}, nil
}

// FormatFig3 renders the scenario result.
func FormatFig3(r Fig3Result) string {
	return fmt.Sprintf(
		"Figure 3: Tail scheduling vs GPU-first (%d tasks, %d CPU slots, %d GPU at %.0fx)\n"+
			"  GPU-first makespan: %7.1f s\n"+
			"  Tail     makespan: %7.1f s   (%.2fx better, %d tasks forced to GPU)\n",
		r.Tasks, r.CPUSlots, r.GPUs, r.GPUSpeedup,
		r.GPUFirstTime, r.TailTime, r.Improvement(), r.ForcedGPUTasks)
}
