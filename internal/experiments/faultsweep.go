package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/workload"
)

// FaultSweepRow is one fault plan's outcome versus the clean run: the
// headline fault-tolerance invariant is that OutputOK holds (byte-identical
// job output) for every completable plan.
type FaultSweepRow struct {
	Label    string
	Makespan float64
	// OutputOK reports byte-identical output versus the clean run (for the
	// skip-bad-records row: versus the clean run over the pruned input).
	OutputOK bool
	// Err is the structured failure for uncompletable plans.
	Err string
	// Recovery counters from JobStats.
	FailedAttempts   int
	LostAttempts     int
	NodesLost        int
	MapsReexecuted   int
	GPUFallbacks     int
	ReducesRestarted int
	Blacklists       int
	// Data-integrity counters from JobStats.
	FetchFailures     int
	CorruptPartitions int
	MapOutputsLost    int
	RecordsSkipped    int
}

// FaultSweep runs wordcount on a 4-slave cluster under a battery of fault
// plans — clean, probabilistic GPU/CPU failures, node crash with restart,
// permanent node crash after map commits, GPU retirement, heartbeat loss,
// a straggler, and the data-integrity battery (map-output corruption,
// transient and sustained fetch failures, background corruption and
// fetch-failure rates, corruption racing a crash, and bad-record skipping)
// — and checks each run's output byte-for-byte against the clean run. A
// non-nil custom plan is appended as an extra row.
func FaultSweep(cfg Config, custom *faults.Plan) ([]FaultSweepRow, error) {
	cfg.fillDefaults()
	setup := cluster.Cluster1().WithSlaves(4)
	// Tiny splits keep the functional wordcount runs fast; the virtual
	// timescale shrinks with them, so fault instants are derived from the
	// clean run's stats rather than hard-coded.
	setup.HDFS.BlockSize = 4 << 10
	bench := workload.Wordcount()
	job, err := core.CompileJob(core.JobSources{
		Name:      "wc-faults",
		Map:       bench.Job.MapSrc,
		Combine:   bench.Job.CombineSrc,
		Reduce:    bench.Job.ReduceSrc,
		Reducers:  3,
		DisableVM: cfg.DisableVM,
	})
	if err != nil {
		return nil, err
	}
	input := workload.TextCorpus(cfg.Seed, 48*(4<<10))
	pool, release := cfg.pool()
	defer release()
	run := func(in []byte, plan *faults.Plan, skip bool, rec *obs.Recorder) (*core.Result, error) {
		return core.Run(job, in, core.RunOptions{
			Setup:          &setup,
			Seed:           cfg.Seed,
			Faults:         plan,
			SkipBadRecords: skip,
			Obs:            rec,
			Pool:           pool,
		})
	}
	// The clean run goes first, alone: every plan below derives its fault
	// instants from the clean stats. Fork+merge recording keeps the bytes
	// identical across worker counts.
	clean, err := func() (*core.Result, error) {
		rec := cfg.Obs.Fork()
		res, err := run(input, nil, false, rec)
		cfg.Obs.Merge(rec)
		return res, err
	}()
	if err != nil {
		return nil, fmt.Errorf("experiments: clean fault-sweep run: %w", err)
	}
	cleanOut := clean.TextOutput()
	mapEnd := clean.Stats.MapPhaseEnd
	span := clean.Stats.Makespan
	rows := []FaultSweepRow{{
		Label:    "clean",
		Makespan: span,
		OutputOK: true,
	}}

	plans := []struct {
		label string
		plan  *faults.Plan
	}{
		{"gpu-rate-0.3", &faults.Plan{GPUFailureRate: 0.3}},
		{"cpu+gpu-rate", &faults.Plan{CPUFailureRate: 0.05, GPUFailureRate: 0.2}},
		{"crash+restart", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.NodeCrash, Node: 1, At: 0.8 * mapEnd, RestartAfter: 0.2 * span},
		}}},
		{"crash-after-maps", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.NodeCrash, Node: 2, At: 0.9 * mapEnd},
		}}},
		{"gpu-retire", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.GPURetire, Node: 0, At: 0.2 * mapEnd},
		}}},
		{"hb-loss", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.HeartbeatLoss, Node: 3, At: 0.3 * mapEnd, Duration: 0.5 * span},
		}}},
		{"straggler-4x", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.Slowdown, Node: 1, At: 0, Factor: 4},
		}}},
		// Data-integrity battery: shuffle corruption and fetch failures.
		{"corrupt-1-part", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.MapOutputCorrupt, Task: 0, Attempt: 0, Part: 0},
		}}},
		{"corrupt-output", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.MapOutputCorrupt, Task: 2, Attempt: 0, Part: -1},
		}}},
		{"corrupt-2-tasks", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.MapOutputCorrupt, Task: 1, Attempt: 0, Part: 1},
			{Kind: faults.MapOutputCorrupt, Task: 3, Attempt: 0, Part: 2},
		}}},
		{"corrupt-rate-0.05", &faults.Plan{CorruptRate: 0.05, Seed: 5}},
		{"fetchfail-2x", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.FetchFail, Task: 1, Part: 1, Times: 2},
		}}},
		{"fetchfail-lost", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.FetchFail, Task: 0, Part: 0, Times: 9},
		}}},
		{"fetch-rate-0.05", &faults.Plan{FetchFailRate: 0.05, Seed: 6}},
		{"corrupt+crash", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.MapOutputCorrupt, Task: 0, Attempt: 0, Part: -1},
			{Kind: faults.NodeCrash, Node: 1, At: mapEnd + 0.5*(span-mapEnd), RestartAfter: 0.3 * span},
		}}},
	}
	if custom != nil {
		plans = append(plans, struct {
			label string
			plan  *faults.Plan
		}{"custom", custom})
	}
	// Every plan row is independent of the others: run them on the worker
	// pool, one task per row, merged back in plan order. A row's failure is
	// data (an Err row), not a sweep failure, so the run callbacks never
	// return an error.
	planRows, err := parallelRuns(pool, cfg.Obs, len(plans),
		func(i int, rec *obs.Recorder) (FaultSweepRow, error) {
			p := plans[i]
			res, err := run(input, p.plan, false, rec)
			if err != nil {
				return FaultSweepRow{Label: p.label, Err: err.Error()}, nil
			}
			return sweepRow(p.label, res, res.TextOutput() == cleanOut), nil
		})
	if err != nil {
		return nil, err
	}
	rows = append(rows, planRows...)

	// Bad-record skipping: poison two records of split 0 with skip mode on;
	// the run must reproduce the clean output of the input with those two
	// lines removed. The pruned-input reference and the skip run are
	// independent, so they share one parallel group.
	skipPlan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.InputCorrupt, Task: 0, Record: 1},
		{Kind: faults.InputCorrupt, Task: 0, Record: 4},
	}}
	pruned := dropRecords(input, 1, 4)
	type skipOut struct {
		res *core.Result
		err error
	}
	skipRuns, err := parallelRuns(pool, cfg.Obs, 2,
		func(i int, rec *obs.Recorder) (skipOut, error) {
			if i == 0 {
				res, err := run(pruned, nil, false, rec)
				return skipOut{res, err}, nil
			}
			res, err := run(input, skipPlan, true, rec)
			return skipOut{res, err}, nil
		})
	if err != nil {
		return nil, err
	}
	prunedRef := skipRuns[0]
	if prunedRef.err != nil {
		return nil, fmt.Errorf("experiments: pruned-input reference run: %w", prunedRef.err)
	}
	if sk := skipRuns[1]; sk.err != nil {
		rows = append(rows, FaultSweepRow{Label: "skip-bad-records", Err: sk.err.Error()})
	} else {
		rows = append(rows, sweepRow("skip-bad-records", sk.res, sk.res.TextOutput() == prunedRef.res.TextOutput()))
	}
	return rows, nil
}

// sweepRow copies a completed run's recovery and integrity counters.
func sweepRow(label string, res *core.Result, outputOK bool) FaultSweepRow {
	s := res.Stats
	return FaultSweepRow{
		Label:             label,
		Makespan:          s.Makespan,
		OutputOK:          outputOK,
		FailedAttempts:    s.FailedAttempts,
		LostAttempts:      s.LostAttempts,
		NodesLost:         s.NodesLost,
		MapsReexecuted:    s.MapsReexecuted,
		GPUFallbacks:      s.GPUFallbacks,
		ReducesRestarted:  s.ReducesRestarted,
		Blacklists:        s.NodeBlacklists,
		FetchFailures:     s.FetchFailures,
		CorruptPartitions: s.CorruptPartitions,
		MapOutputsLost:    s.MapOutputsLost,
		RecordsSkipped:    s.RecordsSkipped,
	}
}

// dropRecords removes the newline-delimited records at the given indices
// (mirroring the engine's LineRecordReader skip semantics on split 0, which
// starts at byte 0).
func dropRecords(input []byte, drop ...int) []byte {
	dropSet := map[int]bool{}
	for _, d := range drop {
		dropSet[d] = true
	}
	var out []byte
	rec := 0
	for start := 0; start < len(input); rec++ {
		end := start
		for end < len(input) && input[end] != '\n' {
			end++
		}
		if end < len(input) {
			end++
		}
		if !dropSet[rec] {
			out = append(out, input[start:end]...)
		}
		start = end
	}
	return out
}

// FormatFaultSweep renders fault-sweep rows as a table.
func FormatFaultSweep(rows []FaultSweepRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fault sweep (wordcount, 4 slaves; output compared byte-for-byte to clean run)")
	fmt.Fprintf(&b, "%-18s %10s %6s %5s %5s %5s %6s %5s %5s %5s %5s %5s %5s %5s\n",
		"plan", "makespan", "output", "fail", "lost", "nodes", "reexec", "fback", "redo", "blist",
		"ffail", "crpt", "olost", "skip")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-18s FAILED: %s\n", r.Label, r.Err)
			continue
		}
		ok := "ok"
		if !r.OutputOK {
			ok = "DIFF"
		}
		fmt.Fprintf(&b, "%-18s %10.4f %6s %5d %5d %5d %6d %5d %5d %5d %5d %5d %5d %5d\n",
			r.Label, r.Makespan, ok, r.FailedAttempts, r.LostAttempts, r.NodesLost,
			r.MapsReexecuted, r.GPUFallbacks, r.ReducesRestarted, r.Blacklists,
			r.FetchFailures, r.CorruptPartitions, r.MapOutputsLost, r.RecordsSkipped)
	}
	return b.String()
}
