package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/workload"
)

// FaultSweepRow is one fault plan's outcome versus the clean run: the
// headline fault-tolerance invariant is that OutputOK holds (byte-identical
// job output) for every completable plan.
type FaultSweepRow struct {
	Label    string
	Makespan float64
	// OutputOK reports byte-identical output versus the clean run.
	OutputOK bool
	// Err is the structured failure for uncompletable plans.
	Err string
	// Recovery counters from JobStats.
	FailedAttempts   int
	LostAttempts     int
	NodesLost        int
	MapsReexecuted   int
	GPUFallbacks     int
	ReducesRestarted int
	Blacklists       int
}

// FaultSweep runs wordcount on a 4-slave cluster under a battery of fault
// plans — clean, probabilistic GPU/CPU failures, node crash with restart,
// permanent node crash after map commits, GPU retirement, heartbeat loss,
// and a straggler — and checks each run's output byte-for-byte against the
// clean run. A non-nil custom plan is appended as an extra row.
func FaultSweep(cfg Config, custom *faults.Plan) ([]FaultSweepRow, error) {
	cfg.fillDefaults()
	setup := cluster.Cluster1().WithSlaves(4)
	// Tiny splits keep the functional wordcount runs fast; the virtual
	// timescale shrinks with them, so fault instants are derived from the
	// clean run's stats rather than hard-coded.
	setup.HDFS.BlockSize = 4 << 10
	bench := workload.Wordcount()
	job, err := core.CompileJob(core.JobSources{
		Name:      "wc-faults",
		Map:       bench.Job.MapSrc,
		Combine:   bench.Job.CombineSrc,
		Reduce:    bench.Job.ReduceSrc,
		Reducers:  3,
		DisableVM: cfg.DisableVM,
	})
	if err != nil {
		return nil, err
	}
	input := workload.TextCorpus(cfg.Seed, 48*(4<<10))
	run := func(plan *faults.Plan) (*core.Result, error) {
		return core.Run(job, input, core.RunOptions{
			Setup:  &setup,
			Seed:   cfg.Seed,
			Faults: plan,
			Obs:    cfg.Obs,
		})
	}
	clean, err := run(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: clean fault-sweep run: %w", err)
	}
	cleanOut := clean.TextOutput()
	mapEnd := clean.Stats.MapPhaseEnd
	rows := []FaultSweepRow{{
		Label:    "clean",
		Makespan: clean.Stats.Makespan,
		OutputOK: true,
	}}

	plans := []struct {
		label string
		plan  *faults.Plan
	}{
		{"gpu-rate-0.3", &faults.Plan{GPUFailureRate: 0.3}},
		{"cpu+gpu-rate", &faults.Plan{CPUFailureRate: 0.05, GPUFailureRate: 0.2}},
		{"crash+restart", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.NodeCrash, Node: 1, At: 0.8 * mapEnd, RestartAfter: 0.2 * clean.Stats.Makespan},
		}}},
		{"crash-after-maps", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.NodeCrash, Node: 2, At: 0.9 * mapEnd},
		}}},
		{"gpu-retire", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.GPURetire, Node: 0, At: 0.2 * mapEnd},
		}}},
		{"hb-loss", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.HeartbeatLoss, Node: 3, At: 0.3 * mapEnd, Duration: 0.5 * clean.Stats.Makespan},
		}}},
		{"straggler-4x", &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.Slowdown, Node: 1, At: 0, Factor: 4},
		}}},
	}
	if custom != nil {
		plans = append(plans, struct {
			label string
			plan  *faults.Plan
		}{"custom", custom})
	}
	for _, p := range plans {
		res, err := run(p.plan)
		if err != nil {
			rows = append(rows, FaultSweepRow{Label: p.label, Err: err.Error()})
			continue
		}
		rows = append(rows, FaultSweepRow{
			Label:            p.label,
			Makespan:         res.Stats.Makespan,
			OutputOK:         res.TextOutput() == cleanOut,
			FailedAttempts:   res.Stats.FailedAttempts,
			LostAttempts:     res.Stats.LostAttempts,
			NodesLost:        res.Stats.NodesLost,
			MapsReexecuted:   res.Stats.MapsReexecuted,
			GPUFallbacks:     res.Stats.GPUFallbacks,
			ReducesRestarted: res.Stats.ReducesRestarted,
			Blacklists:       res.Stats.NodeBlacklists,
		})
	}
	return rows, nil
}

// FormatFaultSweep renders fault-sweep rows as a table.
func FormatFaultSweep(rows []FaultSweepRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fault sweep (wordcount, 4 slaves; output compared byte-for-byte to clean run)")
	fmt.Fprintf(&b, "%-18s %10s %6s %5s %5s %5s %6s %5s %5s %5s\n",
		"plan", "makespan", "output", "fail", "lost", "nodes", "reexec", "fback", "redo", "blist")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-18s FAILED: %s\n", r.Label, r.Err)
			continue
		}
		ok := "ok"
		if !r.OutputOK {
			ok = "DIFF"
		}
		fmt.Fprintf(&b, "%-18s %10.4f %6s %5d %5d %5d %6d %5d %5d %5d\n",
			r.Label, r.Makespan, ok, r.FailedAttempts, r.LostAttempts, r.NodesLost,
			r.MapsReexecuted, r.GPUFallbacks, r.ReducesRestarted, r.Blacklists)
	}
	return b.String()
}
