package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/gpurt"
	"repro/internal/workload"
)

// Fig5Row is one benchmark's single-task GPU speedup over one CPU core,
// with the translated baseline and with all compiler optimizations
// (Figure 5). Tasks are data-local, as in the paper.
type Fig5Row struct {
	Code        string
	Nature      string
	BaseSpeedup float64
	OptSpeedup  float64
}

// Fig5 measures single-task speedups for all benchmarks on Cluster1
// hardware, sorted by increasing optimized speedup as in the paper.
func Fig5(cfg Config) ([]Fig5Row, error) {
	cfg.fillDefaults()
	setup := cluster.Cluster1()
	var rows []Fig5Row
	for _, b := range workload.All() {
		base, err := sampleBenchmark(b, setup, 1, gpurt.Baseline(), cfg)
		if err != nil {
			return nil, err
		}
		opt, err := sampleBenchmark(b, setup, 1, gpurt.AllOptimizations(), cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{
			Code: b.Code, Nature: b.Nature,
			BaseSpeedup: base.Speedup(), OptSpeedup: opt.Speedup(),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].OptSpeedup < rows[j].OptSpeedup })
	return rows, nil
}

// FormatFig5 renders Figure 5.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 5: Speedup of a single GPU task over a CPU task (sorted ascending)")
	fmt.Fprintf(&b, "%-6s %-8s %14s %14s %14s\n", "Bench", "Nature", "base-translat", "+optimizations", "opt-gain")
	for _, r := range rows {
		gain := 0.0
		if r.BaseSpeedup > 0 {
			gain = r.OptSpeedup / r.BaseSpeedup
		}
		fmt.Fprintf(&b, "%-6s %-8s %14.2f %14.2f %14.2f\n", r.Code, r.Nature, r.BaseSpeedup, r.OptSpeedup, gain)
	}
	return b.String()
}

// Fig6Row is one benchmark's GPU task execution-time breakdown as stage
// fractions (Figure 6).
type Fig6Row struct {
	Code      string
	Fractions map[string]float64 // stage name -> fraction of task time
	Total     float64
}

// Fig6Stages lists the stage names in the paper's stacking order.
var Fig6Stages = []string{
	"input read", "input copy", "record count", "map",
	"aggregate", "sort", "combine", "output write",
}

// Fig6 measures the per-stage breakdown of one optimized GPU task per
// benchmark.
func Fig6(cfg Config) ([]Fig6Row, error) {
	cfg.fillDefaults()
	setup := cluster.Cluster1()
	var rows []Fig6Row
	for _, b := range workload.All() {
		sample, err := sampleBenchmark(b, setup, 1, gpurt.AllOptimizations(), cfg)
		if err != nil {
			return nil, err
		}
		row := Fig6Row{Code: b.Code, Fractions: map[string]float64{}}
		for _, st := range sample.GPUTimes {
			for _, stage := range st.Stages() {
				row.Fractions[stage.Name] += stage.Time
			}
			row.Total += st.Total()
		}
		for name := range row.Fractions {
			row.Fractions[name] /= row.Total
		}
		row.Total /= float64(len(sample.GPUTimes))
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig6 renders Figure 6 as stage percentage columns.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 6: Execution time breakdown of a GPU task (% of task time)")
	fmt.Fprintf(&b, "%-6s", "Bench")
	for _, s := range Fig6Stages {
		fmt.Fprintf(&b, " %12s", s)
	}
	fmt.Fprintf(&b, " %10s\n", "total(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s", r.Code)
		for _, s := range Fig6Stages {
			fmt.Fprintf(&b, " %11.1f%%", 100*r.Fractions[s])
		}
		fmt.Fprintf(&b, " %10.5f\n", r.Total)
	}
	return b.String()
}

// Fig7Row is one benchmark's kernel-level speedup from a single
// optimization (Figures 7a-7e).
type Fig7Row struct {
	Code    string
	Speedup float64
}

// fig7Stage measures one stage's time with a full optimization set versus
// the same set with one optimization disabled, for the given benchmarks.
func fig7Stage(codes []string, stage func(gpurt.StageTimes) float64,
	disable func(*gpurt.Options), cfg Config) ([]Fig7Row, error) {

	cfg.fillDefaults()
	setup := cluster.Cluster1()
	var rows []Fig7Row
	for _, code := range codes {
		b := workload.ByCode(code)
		if b == nil {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", code)
		}
		on, err := sampleBenchmark(b, setup, 1, gpurt.AllOptimizations(), cfg)
		if err != nil {
			return nil, err
		}
		offOpts := gpurt.AllOptimizations()
		disable(&offOpts)
		off, err := sampleBenchmark(b, setup, 1, offOpts, cfg)
		if err != nil {
			return nil, err
		}
		var tOn, tOff float64
		for i := range on.GPUTimes {
			tOn += stage(on.GPUTimes[i])
			tOff += stage(off.GPUTimes[i])
		}
		speedup := 1.0
		if tOn > 0 {
			speedup = tOff / tOn
		}
		rows = append(rows, Fig7Row{Code: code, Speedup: speedup})
	}
	return rows, nil
}

// Fig7Texture measures the texture-memory effect on map kernels
// (Figure 7a; paper: ~2x on KM and CL).
func Fig7Texture(cfg Config) ([]Fig7Row, error) {
	return fig7Stage([]string{"KM", "CL"},
		func(t gpurt.StageTimes) float64 { return t.Map },
		func(o *gpurt.Options) { o.UseTexture = false }, cfg)
}

// Fig7VectorCombine measures vectorized read/write on combine kernels
// (Figure 7b; paper: up to 2.7x).
func Fig7VectorCombine(cfg Config) ([]Fig7Row, error) {
	return fig7Stage([]string{"GR", "HS", "WC", "HR", "LR"},
		func(t gpurt.StageTimes) float64 { return t.Combine },
		func(o *gpurt.Options) { o.VectorCombine = false }, cfg)
}

// Fig7VectorMap measures vectorized read/write on map kernels
// (Figure 7c; paper: up to 1.7x).
func Fig7VectorMap(cfg Config) ([]Fig7Row, error) {
	return fig7Stage([]string{"GR", "WC", "KM"},
		func(t gpurt.StageTimes) float64 { return t.Map },
		func(o *gpurt.Options) { o.VectorMap = false }, cfg)
}

// Fig7RecordStealing measures record stealing on map kernels
// (Figure 7d; paper: up to 1.36x, on skewed-record benchmarks). The split
// is enlarged so each thread handles several records — stealing is a
// no-op when every record gets its own thread.
func Fig7RecordStealing(cfg Config) ([]Fig7Row, error) {
	cfg.fillDefaults()
	cfg.SplitBytes *= 16
	return fig7Stage([]string{"HS", "KM", "CL"},
		func(t gpurt.StageTimes) float64 { return t.Map },
		func(o *gpurt.Options) { o.RecordStealing = false }, cfg)
}

// Fig7Aggregation measures KV-pair aggregation before sort
// (Figure 7e; paper: up to 7.6x on the sort kernel).
func Fig7Aggregation(cfg Config) ([]Fig7Row, error) {
	return fig7Stage([]string{"GR", "HS", "WC", "HR", "LR"},
		func(t gpurt.StageTimes) float64 { return t.Sort + t.Aggregate },
		func(o *gpurt.Options) { o.Aggregation = false }, cfg)
}

// FormatFig7 renders one Figure-7 panel.
func FormatFig7(title string, rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6s %6.2fx\n", r.Code, r.Speedup)
	}
	return b.String()
}
