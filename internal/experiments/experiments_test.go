package experiments

import (
	"strings"
	"testing"
)

// tinyCfg keeps experiment tests fast: small splits, one variant, a small
// fraction of the paper's task counts.
var tinyCfg = Config{SplitBytes: 6 << 10, Variants: 1, TaskScale: 0.02, Seed: 7}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2()
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byCode := map[string]Table2Row{}
	for _, r := range rows {
		byCode[r.Code] = r
	}
	// Spot-check the paper's Table 2 values.
	if r := byCode["GR"]; r.MapTasksC1 != 7632 || r.InputGBC1 != 902 || r.PctMapCombine != 69 {
		t.Errorf("GR row = %+v", r)
	}
	if r := byCode["BS"]; r.ReduceTasksC1 != 0 || r.MapTasksC2 != 5120 || r.PctMapCombine != 100 {
		t.Errorf("BS row = %+v", r)
	}
	text := FormatTable2(rows)
	for _, want := range []string{"Wordcount (WC)", "5760", "NA", "Compute", "IO"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 2 text missing %q", want)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	rows := Table3()
	text := FormatTable3(rows)
	for _, want := range []string{"48 (+1 master)", "32 (+1 master)", "K40", "M2090",
		"FDR InfiniBand", "QDR InfiniBand", "Speculative Execution"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 3 text missing %q", want)
		}
	}
}

func TestFig3TailBeatsGPUFirst(t *testing.T) {
	r, err := Fig3(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.TailTime >= r.GPUFirstTime {
		t.Fatalf("tail (%v) not faster than GPU-first (%v)", r.TailTime, r.GPUFirstTime)
	}
	if r.ForcedGPUTasks == 0 {
		t.Error("no tasks were tail-forced")
	}
	if !strings.Contains(FormatFig3(r), "better") {
		t.Error("format output malformed")
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	rows, err := Fig5(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted ascending by optimized speedup.
	for i := 1; i < len(rows); i++ {
		if rows[i].OptSpeedup < rows[i-1].OptSpeedup {
			t.Errorf("rows not sorted at %d", i)
		}
	}
	// BS must be the top speedup and clearly compute-dominant.
	if rows[len(rows)-1].Code != "BS" {
		t.Errorf("top benchmark = %s, want BS", rows[len(rows)-1].Code)
	}
	byCode := map[string]Fig5Row{}
	for _, r := range rows {
		byCode[r.Code] = r
	}
	if byCode["BS"].OptSpeedup < 5*byCode["HS"].OptSpeedup {
		t.Errorf("BS (%v) should dwarf HS (%v)", byCode["BS"].OptSpeedup, byCode["HS"].OptSpeedup)
	}
	// Optimizations never hurt.
	for _, r := range rows {
		if r.OptSpeedup < r.BaseSpeedup*0.95 {
			t.Errorf("%s: optimizations made things worse (%v -> %v)", r.Code, r.BaseSpeedup, r.OptSpeedup)
		}
	}
	_ = FormatFig5(rows)
}

func TestFig6FractionsSumToOne(t *testing.T) {
	rows, err := Fig6(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		sum := 0.0
		for _, f := range r.Fractions {
			sum += f
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: fractions sum to %v", r.Code, sum)
		}
	}
	// BS is map-only: no sort/combine stages.
	for _, r := range rows {
		if r.Code == "BS" {
			if r.Fractions["sort"] != 0 || r.Fractions["combine"] != 0 {
				t.Errorf("BS has sort/combine fractions: %+v", r.Fractions)
			}
			if r.Fractions["output write"] < 0.2 {
				t.Errorf("BS output write fraction = %v, paper reports the write dominating", r.Fractions["output write"])
			}
		}
	}
	_ = FormatFig6(rows)
}

func TestFig7Panels(t *testing.T) {
	t.Run("texture", func(t *testing.T) {
		rows, err := Fig7Texture(tinyCfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Speedup < 1.1 {
				t.Errorf("%s texture speedup = %v, want > 1.1", r.Code, r.Speedup)
			}
		}
	})
	t.Run("vector-combine", func(t *testing.T) {
		rows, err := Fig7VectorCombine(tinyCfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Speedup < 1.0 {
				t.Errorf("%s vector-combine speedup = %v, want >= 1", r.Code, r.Speedup)
			}
		}
	})
	t.Run("vector-map", func(t *testing.T) {
		rows, err := Fig7VectorMap(tinyCfg)
		if err != nil {
			t.Fatal(err)
		}
		sawGain := false
		for _, r := range rows {
			if r.Speedup > 1.2 {
				sawGain = true
			}
		}
		if !sawGain {
			t.Error("vectorized map showed no gains anywhere")
		}
	})
	t.Run("record-stealing", func(t *testing.T) {
		rows, err := Fig7RecordStealing(tinyCfg)
		if err != nil {
			t.Fatal(err)
		}
		sawGain := false
		for _, r := range rows {
			if r.Speedup > 1.05 {
				sawGain = true
			}
			if r.Speedup < 0.95 {
				t.Errorf("%s: stealing hurt the map kernel (%v)", r.Code, r.Speedup)
			}
		}
		if !sawGain {
			t.Error("record stealing showed no gains on skewed benchmarks")
		}
	})
	t.Run("aggregation", func(t *testing.T) {
		rows, err := Fig7Aggregation(tinyCfg)
		if err != nil {
			t.Fatal(err)
		}
		sawGain := false
		for _, r := range rows {
			if r.Speedup > 1.5 {
				sawGain = true
			}
		}
		if !sawGain {
			t.Error("KV aggregation showed no sort gains")
		}
		_ = FormatFig7("7e", rows)
	})
}

// fig4Cfg gives the cluster runs enough tasks per slot for steady-state
// throughput to show (tasks must outnumber slots by several waves).
var fig4Cfg = Config{SplitBytes: 8 << 10, Variants: 1, TaskScale: 0.5, Seed: 7}

func TestFig4aShapeHolds(t *testing.T) {
	rows, err := Fig4a(fig4Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	var bs, worst Fig4Row
	for _, r := range rows {
		if r.Code == "BS" {
			bs = r
		}
	}
	worst = rows[0] // sorted ascending by tail speedup
	if bs.Speedups["1GPU+tail"] < 1.2 {
		t.Errorf("BS end-to-end speedup = %v, want the headline >1.2x effect", bs.Speedups["1GPU+tail"])
	}
	if bs.Speedups["1GPU+tail"] <= worst.Speedups["1GPU+tail"] {
		t.Error("compute-bound BS should beat the slowest benchmark")
	}
	// Everything should at least not get slower with a GPU added.
	for _, r := range rows {
		if r.Speedups["1GPU+tail"] < 0.97 {
			t.Errorf("%s: adding a GPU slowed the job (%v)", r.Code, r.Speedups["1GPU+tail"])
		}
	}
	_ = FormatFig4("fig4a", rows, []string{"1GPU+gpufirst", "1GPU+tail"})
}

func TestFig4bMultiGPUScaling(t *testing.T) {
	rows, err := Fig4b(fig4Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 (KM excluded)", len(rows))
	}
	for _, r := range rows {
		if r.Code == "KM" {
			t.Fatal("KM must be excluded from Cluster2 (paper: memory capacity)")
		}
		if r.Speedups["3GPU+tail"] < r.Speedups["1GPU+tail"]*0.95 {
			t.Errorf("%s: no multi-GPU scaling: 1GPU %v vs 3GPU %v",
				r.Code, r.Speedups["1GPU+tail"], r.Speedups["3GPU+tail"])
		}
	}
}

func TestAblations(t *testing.T) {
	r, err := Ablations(Config{SplitBytes: 8 << 10, Variants: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.BlockVsStatic() <= 1.0 {
		t.Errorf("per-block stealing not better than static: %v", r.BlockVsStatic())
	}
	if r.BlockVsGlobal() <= 1.0 {
		t.Errorf("per-block stealing not better than global-atomic: %v", r.BlockVsGlobal())
	}
	if r.SpeculationGain() <= 1.0 {
		t.Errorf("speculation gain = %v", r.SpeculationGain())
	}
	if !strings.Contains(FormatAblations(r), "rejected alternative") {
		t.Error("format output malformed")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Fatalf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
}

func TestSampleDeterministic(t *testing.T) {
	a, err := Fig3(Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Fig3 not deterministic: %+v vs %+v", a, b)
	}
}

func TestFaultSweepIntegrityRows(t *testing.T) {
	rows, err := FaultSweep(Config{Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]FaultSweepRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.Err != "" {
			t.Errorf("plan %s failed: %s", r.Label, r.Err)
			continue
		}
		if !r.OutputOK {
			t.Errorf("plan %s produced output differing from its reference", r.Label)
		}
	}
	// The corruption battery must be present and must actually exercise the
	// integrity machinery, not just complete.
	corruption := []string{"corrupt-1-part", "corrupt-output", "corrupt-2-tasks",
		"corrupt-rate-0.05", "fetchfail-2x", "fetchfail-lost", "fetch-rate-0.05", "corrupt+crash"}
	for _, label := range corruption {
		r, ok := byLabel[label]
		if !ok {
			t.Errorf("sweep is missing the %s plan", label)
			continue
		}
		if r.Err == "" && r.FetchFailures == 0 && r.CorruptPartitions == 0 {
			t.Errorf("plan %s triggered neither fetch failures nor checksum rejections", label)
		}
	}
	if r, ok := byLabel["skip-bad-records"]; !ok {
		t.Error("sweep is missing the skip-bad-records row")
	} else if r.Err == "" && r.RecordsSkipped != 2 {
		t.Errorf("skip-bad-records row skipped %d records, want 2", r.RecordsSkipped)
	}
	if !strings.Contains(FormatFaultSweep(rows), "crpt") {
		t.Error("formatted sweep is missing the integrity columns")
	}
}
