package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/gpurt"
	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Fig4Row is one benchmark's end-to-end result on one cluster: job
// speedups over CPU-only Hadoop for each scheduler/GPU-count combination.
type Fig4Row struct {
	Code string
	// CPUOnly is the baseline makespan in seconds.
	CPUOnly float64
	// Speedups maps a configuration label (e.g. "1GPU+tail") to the
	// speedup over CPUOnly.
	Speedups map[string]float64
	// TaskSpeedup is the sampled single-task GPU/CPU ratio feeding the run.
	TaskSpeedup float64
}

// Fig4a reproduces Figure 4a: end-to-end speedup over CPU-only Hadoop on
// Cluster1 (CPU + 1 GPU per node), GPU-first vs tail scheduling, for all
// eight benchmarks with Table-2 task counts.
func Fig4a(cfg Config) ([]Fig4Row, error) {
	cfg.fillDefaults()
	rows, err := fig4Sweep(cfg, cluster.Cluster1(), 1, []int{1}, workload.All())
	if err != nil {
		return nil, err
	}
	sortFig4(rows, "1GPU+tail")
	return rows, nil
}

// Fig4b reproduces Figure 4b: multi-GPU scaling on Cluster2 (1, 2, and 3
// GPUs per node, GPU-first vs tail). KM is excluded, as in the paper.
func Fig4b(cfg Config) ([]Fig4Row, error) {
	cfg.fillDefaults()
	var benches []*workload.Benchmark
	for _, b := range workload.All() {
		if b.OnCluster2() {
			benches = append(benches, b)
		}
	}
	rows, err := fig4Sweep(cfg, cluster.Cluster2(), 2, []int{1, 2, 3}, benches)
	if err != nil {
		return nil, err
	}
	sortFig4(rows, "3GPU+tail")
	return rows, nil
}

// fig4Sweep samples and runs every benchmark, one worker task per
// benchmark: the expensive part is the functional split sampling, so the
// sweep parallelizes cleanly while each benchmark's own job runs stay in
// serial order on its private recorder.
func fig4Sweep(cfg Config, setup cluster.Setup, clusterIdx int, gpuCounts []int,
	benches []*workload.Benchmark) ([]Fig4Row, error) {

	pool, release := cfg.pool()
	defer release()
	rows, err := parallelRuns(pool, cfg.Obs, len(benches),
		func(i int, rec *obs.Recorder) (Fig4Row, error) {
			bcfg := cfg
			bcfg.Obs = rec
			b := benches[i]
			sample, err := sampleBenchmark(b, setup, clusterIdx, gpurt.AllOptimizations(), bcfg)
			if err != nil {
				return Fig4Row{}, err
			}
			row, err := fig4Bench(b, setup, clusterIdx, sample, gpuCounts, bcfg)
			if err != nil {
				return Fig4Row{}, err
			}
			return *row, nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func sortFig4(rows []Fig4Row, key string) {
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].Speedups[key] < rows[j].Speedups[key]
	})
}

// fig4Bench runs one benchmark's job under every configuration.
func fig4Bench(b *workload.Benchmark, setup cluster.Setup, clusterIdx int,
	sample *TaskSample, gpuCounts []int, cfg Config) (*Fig4Row, error) {

	mapTasks := b.MapTasksC1
	reducers := b.ReduceTasksC1
	if clusterIdx == 2 {
		mapTasks = b.MapTasksC2
		reducers = b.ReduceTasksC2
	}
	mapTasks = scaledTasks(mapTasks, cfg)

	// Calibrate the reduce phase with Table 2's "% exec time map+combine
	// active" column: the non-map fraction of the CPU-only job is the
	// shuffle+reduce tail.
	pct := float64(b.PctMapCombine) / 100
	mapPhaseCPU := sample.MeanCPU() * float64(mapTasks) / float64(setup.Node.MapSlots*setup.Slaves)
	reduceCompute := 0.0
	if pct < 1 && reducers > 0 {
		reduceCompute = mapPhaseCPU * (1 - pct) / pct
	}
	makeExec := func() *mr.SampledExecutor {
		return &mr.SampledExecutor{
			Splits:            mapTasks,
			Reducers:          reducers,
			Slaves:            setup.Slaves,
			CPUDur:            sample.CPUDur,
			GPUDur:            sample.GPUDur,
			RemoteReadPenalty: float64(cfg.SplitBytes) / (setup.HDFS.NetworkGBs * 1e9),
			MapOutputBytes:    sample.OutputBytes,
			ReduceCompute:     reduceCompute,
			ShuffleGBs:        setup.HDFS.NetworkGBs,
			Jitter:            0.35,
		}
	}
	// The heartbeat interval scales with the task durations (the paper
	// pairs 3s heartbeats with tasks of tens of seconds on 256MB splits;
	// our scaled splits shrink tasks proportionally).
	heartbeat := sample.MeanGPU() / 2
	if heartbeat < 1e-5 {
		heartbeat = 1e-5
	}
	run := func(node mr.NodeConfig, sched mr.SchedulerKind) (float64, error) {
		stats, err := mr.RunJob(mr.ClusterConfig{
			Name:   fmt.Sprintf("%s-%dgpu-%s", b.Code, node.GPUs, sched),
			Slaves: setup.Slaves, Node: node, Scheduler: sched,
			HeartbeatSec: heartbeat,
			Obs:          cfg.Obs,
		}, makeExec())
		if err != nil {
			return 0, err
		}
		return stats.Makespan, nil
	}

	base, err := run(setup.CPUOnlyNode(), mr.CPUOnly)
	if err != nil {
		return nil, err
	}
	row := &Fig4Row{Code: b.Code, CPUOnly: base, Speedups: map[string]float64{}, TaskSpeedup: sample.Speedup()}
	for _, g := range gpuCounts {
		node := setup.Node
		node.GPUs = g
		for _, sched := range []mr.SchedulerKind{mr.GPUFirst, mr.TailSched} {
			m, err := run(node, sched)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%dGPU+%s", g, schedLabel(sched))
			row.Speedups[label] = base / m
		}
	}
	return row, nil
}

func schedLabel(s mr.SchedulerKind) string {
	if s == mr.TailSched {
		return "tail"
	}
	return "gpufirst"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatFig4 renders Fig4 rows with the given configuration columns.
func FormatFig4(title string, rows []Fig4Row, labels []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (speedup over CPU-only Hadoop)\n", title)
	fmt.Fprintf(&b, "%-6s %12s %10s", "Bench", "CPUonly(s)", "task-spd")
	for _, l := range labels {
		fmt.Fprintf(&b, " %14s", l)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %12.4f %10.1f", r.Code, r.CPUOnly, r.TaskSpeedup)
		for _, l := range labels {
			fmt.Fprintf(&b, " %14.2f", r.Speedups[l])
		}
		fmt.Fprintln(&b)
	}
	var tails []float64
	for _, r := range rows {
		if v, ok := r.Speedups[labels[len(labels)-1]]; ok && v > 0 {
			tails = append(tails, v)
		}
	}
	fmt.Fprintf(&b, "geometric mean (%s): %.2fx\n", labels[len(labels)-1], GeoMean(tails))
	return b.String()
}
