package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/gpurt"
	"repro/internal/mr"
	"repro/internal/workload"
)

// AblationResult holds the design-choice studies DESIGN.md calls out:
// record-stealing granularity (paper §4.1's rejected global-atomic
// alternative) and the scheduler comparison, plus the speculative
// execution extension under a straggler node.
type AblationResult struct {
	// Stealing: map-kernel time by record-distribution strategy, on the
	// skewed kmeans workload.
	StaticMapTime float64
	BlockMapTime  float64
	GlobalMapTime float64

	// Speculation: makespans with one 4x-slower node.
	NoSpecMakespan float64
	SpecMakespan   float64
	SpecLaunched   int
	SpecWon        int
}

// BlockVsStatic returns the per-threadblock stealing gain over static
// partitioning (the Fig. 7d effect).
func (r AblationResult) BlockVsStatic() float64 { return r.StaticMapTime / r.BlockMapTime }

// BlockVsGlobal returns the per-threadblock gain over device-wide
// global-atomic stealing (the §4.1 design argument).
func (r AblationResult) BlockVsGlobal() float64 { return r.GlobalMapTime / r.BlockMapTime }

// SpeculationGain returns the straggler-mitigation speedup.
func (r AblationResult) SpeculationGain() float64 { return r.NoSpecMakespan / r.SpecMakespan }

// Ablations runs both studies.
func Ablations(cfg Config) (*AblationResult, error) {
	cfg.fillDefaults()
	res := &AblationResult{}

	// Stealing granularity on skewed kmeans records. The input must hold
	// several records per thread — distribution strategy is irrelevant
	// when every record gets its own thread.
	inputBytes := cfg.SplitBytes * 16
	if inputBytes < 128<<10 {
		inputBytes = 128 << 10
	}
	km := workload.Kmeans()
	input := km.Gen(cfg.Seed, inputBytes)
	kmJob := km.JobFor(1)
	kmJob.DisableVM = cfg.DisableVM
	job, err := mr.CompileJobProf(kmJob, cfg.Prof)
	if err != nil {
		return nil, err
	}
	dev, err := gpu.NewDevice(cluster.Cluster1().Device)
	if err != nil {
		return nil, err
	}
	measure := func(steal, global bool) (float64, error) {
		opts := gpurt.AllOptimizations()
		opts.RecordStealing = steal
		opts.GlobalStealing = global
		opts.Prof = cfg.Prof
		tr, err := gpurt.RunTask(dev, job.MapC, nil, input, gpurt.TaskConfig{NumReducers: 4, Opts: opts})
		if err != nil {
			return 0, err
		}
		return tr.Times.Map, nil
	}
	if res.StaticMapTime, err = measure(false, false); err != nil {
		return nil, err
	}
	if res.BlockMapTime, err = measure(true, false); err != nil {
		return nil, err
	}
	if res.GlobalMapTime, err = measure(true, true); err != nil {
		return nil, err
	}

	// Speculative execution under inter-node heterogeneity.
	makeExec := func() *mr.SampledExecutor {
		return &mr.SampledExecutor{
			Splits: 160, Reducers: 0, Slaves: 4,
			CPUDur: []float64{10}, GPUDur: []float64{2},
			NodeSpeed: []float64{4, 1, 1, 1}, Jitter: 0.2,
		}
	}
	run := func(spec bool) (*mr.JobStats, error) {
		return mr.RunJob(mr.ClusterConfig{
			Slaves: 4, Node: mr.NodeConfig{MapSlots: 4, ReduceSlots: 1},
			Scheduler: mr.CPUOnly, HeartbeatSec: 0.5,
			SpeculativeExecution: spec, Seed: cfg.Seed,
		}, makeExec())
	}
	off, err := run(false)
	if err != nil {
		return nil, err
	}
	on, err := run(true)
	if err != nil {
		return nil, err
	}
	res.NoSpecMakespan = off.Makespan
	res.SpecMakespan = on.Makespan
	res.SpecLaunched = on.SpeculativeLaunched
	res.SpecWon = on.SpeculativeWon
	return res, nil
}

// FormatAblations renders the studies.
func FormatAblations(r *AblationResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation 1: record-stealing granularity (kmeans map kernel, skewed records)")
	fmt.Fprintf(&b, "  static partitioning : %.6f s\n", r.StaticMapTime)
	fmt.Fprintf(&b, "  per-threadblock     : %.6f s  (%.2fx vs static — the paper's design)\n",
		r.BlockMapTime, r.BlockVsStatic())
	fmt.Fprintf(&b, "  global-atomic queue : %.6f s  (per-block wins %.2fx — §4.1's rejected alternative)\n",
		r.GlobalMapTime, r.BlockVsGlobal())
	fmt.Fprintln(&b, "Ablation 2: speculative execution with one 4x-slower node (extension)")
	fmt.Fprintf(&b, "  speculation off     : %.1f s\n", r.NoSpecMakespan)
	fmt.Fprintf(&b, "  speculation on      : %.1f s  (%.2fx, %d backups, %d won)\n",
		r.SpecMakespan, r.SpeculationGain(), r.SpecLaunched, r.SpecWon)
	return b.String()
}
