// Package experiments regenerates every table and figure of the paper's
// evaluation (§7): Table 2 (benchmarks), Table 3 (clusters), Figure 3
// (tail scheduling intuition), Figures 4a/4b (end-to-end cluster
// speedups), Figure 5 (single-task GPU speedups, baseline vs optimized),
// Figure 6 (GPU task breakdown), and Figures 7a–7e (individual
// optimization effects).
//
// Cluster-scale experiments keep the paper's Table-2 task counts but
// sample per-task durations from a few functionally executed splits
// (scaled block size), then replay them through the virtual-time Hadoop
// engine — see EXPERIMENTS.md for the scaling discussion.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/gpurt"
	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/streaming"
	"repro/internal/workload"
)

// Config controls experiment scale. The zero value is usable: defaults
// reproduce the shapes at modest runtime.
type Config struct {
	// SplitBytes is the scaled fileSplit size sampled functionally.
	SplitBytes int
	// Variants is the number of distinct splits sampled per benchmark and
	// device.
	Variants int
	// Seed drives input generation.
	Seed uint64
	// TaskScale multiplies the paper's Table-2 map task counts (1.0 =
	// exact counts; tests use smaller values for speed).
	TaskScale float64
	// DisableVM turns off the register-bytecode execution core for every
	// sampled task (-novm); the zero value runs the VM.
	DisableVM bool
	// Obs, when non-nil, records every experiment job's spans and metrics.
	Obs *obs.Recorder
	// Prof, when non-nil, receives wall-clock phase and interpreter
	// hot-path buckets from every functionally sampled task.
	Prof *perf.Profiler
	// Workers bounds host-side parallelism across a sweep's independent
	// jobs (and inside each job's task work). 0 or 1 runs everything
	// serially; every value produces byte-identical tables, traces, and
	// metrics — only wall-clock time changes.
	Workers int
	// Pool optionally shares a caller-owned worker pool across sweeps; when
	// set, Workers is ignored and the pool is not closed here.
	Pool *sim.Pool
}

func (c *Config) fillDefaults() {
	if c.SplitBytes == 0 {
		c.SplitBytes = 32 << 10
	}
	if c.Variants == 0 {
		c.Variants = 3
	}
	if c.Seed == 0 {
		c.Seed = 20150615 // HPDC'15
	}
	if c.TaskScale == 0 {
		c.TaskScale = 1.0
	}
}

// TaskSample holds functionally measured per-variant task behaviour for
// one benchmark on one cluster's hardware.
type TaskSample struct {
	Code        string
	CPUDur      []float64
	GPUDur      []float64
	GPUTimes    []gpurt.StageTimes
	CPUTimes    []streaming.MapTaskTimes
	OutputBytes int64
	Records     int
	KVPairs     int
}

// MeanCPU returns the mean sampled CPU task duration.
func (s *TaskSample) MeanCPU() float64 { return mean(s.CPUDur) }

// MeanGPU returns the mean sampled GPU task duration.
func (s *TaskSample) MeanGPU() float64 { return mean(s.GPUDur) }

// Speedup is the mean single-task GPU speedup over one CPU core.
func (s *TaskSample) Speedup() float64 {
	g := s.MeanGPU()
	if g == 0 {
		return 0
	}
	return s.MeanCPU() / g
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// sampleBenchmark functionally executes Variants splits of a benchmark on
// both devices of the given cluster setup and returns the measurements.
// clusterIdx selects the Table-2 parameter column (1 or 2).
func sampleBenchmark(b *workload.Benchmark, setup cluster.Setup, clusterIdx int,
	opts gpurt.Options, cfg Config) (*TaskSample, error) {

	cfg.fillDefaults()
	job := b.JobFor(clusterIdx)
	job.DisableVM = cfg.DisableVM
	cj, err := mr.CompileJobProf(job, cfg.Prof)
	if err != nil {
		return nil, err
	}
	dev, err := gpu.NewDevice(setup.Device)
	if err != nil {
		return nil, err
	}
	sample := &TaskSample{Code: b.Code}
	for v := 0; v < cfg.Variants; v++ {
		input := b.Gen(cfg.Seed+uint64(v)*977, cfg.SplitBytes)
		// Data-local read of the scaled split.
		readTime := float64(len(input))/(setup.HDFS.DiskReadGBs*1e9) + setup.HDFS.SeekMS/1000

		cpuRes, err := streaming.RunMapTask(cj.MapF, cj.CombineF, input, streaming.MapTaskConfig{
			Schema:        cj.Schema,
			NumReducers:   job.NumReducers,
			CPU:           setup.CPU,
			InputReadTime: readTime,
			DiskWriteGBs:  setup.DiskWriteGBs,
			HDFSWriteGBs:  setup.HDFSWriteGBs,
			Prof:          cfg.Prof,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s cpu sample: %w", b.Code, err)
		}
		gpuOpts := opts
		if gpuOpts.Prof == nil {
			gpuOpts.Prof = cfg.Prof
		}
		gpuRes, err := gpurt.RunTask(dev, cj.MapC, cj.CombineC, input, gpurt.TaskConfig{
			NumReducers:   job.NumReducers,
			Opts:          gpuOpts,
			InputReadTime: readTime,
			DiskWriteGBs:  setup.DiskWriteGBs,
			HDFSWriteGBs:  setup.HDFSWriteGBs,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s gpu sample: %w", b.Code, err)
		}
		sample.CPUDur = append(sample.CPUDur, cpuRes.Times.Total())
		sample.GPUDur = append(sample.GPUDur, gpuRes.Total())
		sample.CPUTimes = append(sample.CPUTimes, cpuRes.Times)
		sample.GPUTimes = append(sample.GPUTimes, gpuRes.Times)
		sample.OutputBytes += gpuRes.OutputBytes / int64(cfg.Variants)
		sample.Records += gpuRes.Records / cfg.Variants
		sample.KVPairs += gpuRes.KVPairs / cfg.Variants
	}
	return sample, nil
}

// pool returns the sweep's shared worker pool (nil for a serial sweep)
// and a release function that closes the pool only if this call created
// it — caller-owned pools stay open.
func (c Config) pool() (*sim.Pool, func()) {
	if c.Pool != nil {
		return c.Pool, func() {}
	}
	if c.Workers > 1 {
		p := sim.NewPool(c.Workers)
		return p, p.Close
	}
	return nil, func() {}
}

// parallelRuns executes n independent runs on the pool — inline, in index
// order, when the pool is serial — handing each run a private fork of the
// base recorder and merging the forks back in index order afterwards.
// Both paths fork and merge, so the recorded bytes are identical for every
// worker count by construction. Results land in index order; the first
// error (by index) wins.
func parallelRuns[T any](pool *sim.Pool, base *obs.Recorder, n int,
	run func(i int, rec *obs.Recorder) (T, error)) ([]T, error) {

	type outcome struct {
		val T
		err error
	}
	recs := make([]*obs.Recorder, n)
	tasks := make([]*sim.Task, n)
	for i := 0; i < n; i++ {
		i := i
		recs[i] = base.Fork()
		tasks[i] = pool.Submit(func() any {
			v, err := run(i, recs[i])
			return outcome{v, err}
		})
	}
	out := make([]T, n)
	var firstErr error
	for i := 0; i < n; i++ {
		o := tasks[i].Wait().(outcome)
		base.Merge(recs[i])
		out[i] = o.val
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// scaledTasks applies Config.TaskScale to a Table-2 task count.
func scaledTasks(n int, cfg Config) int {
	s := int(float64(n) * cfg.TaskScale)
	if s < 8 {
		s = 8
	}
	return s
}
