package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Plan from the compact spec the -faults CLI flag accepts:
// semicolon-separated items, each either a scalar setting or a fault call.
//
//	seed=7                                   draw seed
//	gpurate=0.3                              per-attempt GPU failure rate
//	cpurate=0.05                             per-attempt CPU failure rate
//	corruptrate=0.1                          per-(task,attempt,part) output corruption rate
//	fetchrate=0.2                            per-(task,part,attempt) fetch failure rate
//	poisonrate=0.01                          per-(task,record) input poison rate
//	crash(node=1,at=5)                       permanent node crash at t=5
//	crash(node=1,at=5,restart=10)            crash, restart 10s later
//	hbloss(node=0,at=2,for=8)                heartbeat loss window
//	retire(node=2,at=1)                      retire one GPU on node 2
//	slow(node=3,at=0,for=100,factor=4)       4x straggler window
//	taskfail(task=7)                         every attempt of task 7 fails
//	taskfail(task=7,attempt=0,dev=gpu)       one attempt, GPU path only
//	corrupt(task=3)                          every partition of task 3's first output
//	corrupt(task=3,attempt=0,part=1)         one partition of one attempt
//	fetchfail(task=3,part=0,times=2)         first 2 fetches of the partition fail
//	poison(task=2,record=5)                  poison record 5 of split 2
//
// Whitespace around items is ignored. Times are virtual seconds.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if name, args, ok := splitCall(item); ok {
			f, err := parseFault(name, args)
			if err != nil {
				return nil, err
			}
			p.Faults = append(p.Faults, f)
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("faults: cannot parse %q (want key=value or kind(...))", item)
		}
		switch strings.TrimSpace(key) {
		case "seed":
			n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", val)
			}
			p.Seed = n
		case "gpurate":
			r, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			p.GPUFailureRate = r
		case "cpurate":
			r, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			p.CPUFailureRate = r
		case "corruptrate":
			r, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			p.CorruptRate = r
		case "fetchrate":
			r, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			p.FetchFailRate = r
		case "poisonrate":
			r, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			p.PoisonRate = r
		default:
			return nil, fmt.Errorf("faults: unknown setting %q", key)
		}
	}
	return p, nil
}

// splitCall recognizes "name(arg,arg,...)" items.
func splitCall(item string) (name, args string, ok bool) {
	open := strings.IndexByte(item, '(')
	if open < 0 || !strings.HasSuffix(item, ")") {
		return "", "", false
	}
	return strings.TrimSpace(item[:open]), item[open+1 : len(item)-1], true
}

func parseRate(s string) (float64, error) {
	r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || r < 0 || r >= 1 {
		return 0, fmt.Errorf("faults: bad failure rate %q (want [0,1))", s)
	}
	return r, nil
}

// parseFault builds one Fault from a call item.
func parseFault(name, args string) (Fault, error) {
	f := Fault{Task: -1, Attempt: -1, Node: -1, Part: -1, Record: -1, Times: 1}
	kind, err := ParseKind(name)
	if err != nil {
		return f, err
	}
	f.Kind = kind
	for _, arg := range strings.Split(args, ",") {
		arg = strings.TrimSpace(arg)
		if arg == "" {
			continue
		}
		key, val, ok := strings.Cut(arg, "=")
		if !ok {
			return f, fmt.Errorf("faults: %s: cannot parse argument %q", name, arg)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "node":
			f.Node, err = strconv.Atoi(val)
		case "at":
			f.At, err = strconv.ParseFloat(val, 64)
		case "restart":
			f.RestartAfter, err = strconv.ParseFloat(val, 64)
		case "for":
			f.Duration, err = strconv.ParseFloat(val, 64)
		case "factor":
			f.Factor, err = strconv.ParseFloat(val, 64)
		case "task":
			f.Task, err = strconv.Atoi(val)
		case "attempt":
			f.Attempt, err = strconv.Atoi(val)
		case "part":
			f.Part, err = strconv.Atoi(val)
		case "record":
			f.Record, err = strconv.Atoi(val)
		case "times":
			f.Times, err = strconv.Atoi(val)
		case "dev":
			switch val {
			case "any":
				f.Device = AnyDevice
			case "cpu":
				f.Device = CPUDevice
			case "gpu":
				f.Device = GPUDevice
			default:
				err = fmt.Errorf("want any|cpu|gpu")
			}
		default:
			err = fmt.Errorf("unknown argument")
		}
		if err != nil {
			return f, fmt.Errorf("faults: %s: bad argument %q: %v", name, arg, err)
		}
	}
	if timeScheduled(f.Kind) && f.Node < 0 {
		return f, fmt.Errorf("faults: %s needs node=", name)
	}
	if !timeScheduled(f.Kind) && f.Task < 0 {
		return f, fmt.Errorf("faults: %s needs task=", name)
	}
	if f.Kind == InputCorrupt && f.Record < 0 {
		return f, fmt.Errorf("faults: %s needs record=", name)
	}
	return f, nil
}
