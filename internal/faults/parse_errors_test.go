package faults

import "testing"

// TestParseErrorMessages pins the exact diagnostic for each malformed-spec
// class: the -faults flag prints these verbatim, so they must name the
// offending item and what was expected instead.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct{ spec, want string }{
		{
			"frobnicate(node=1)",
			`faults: unknown fault kind "frobnicate"`,
		},
		{
			"gpurate=1.5",
			`faults: bad failure rate "1.5" (want [0,1))`,
		},
		{
			"cpurate=x",
			`faults: bad failure rate "x" (want [0,1))`,
		},
		{
			"seed=abc",
			`faults: bad seed "abc"`,
		},
		{
			"crash(at=1)",
			"faults: crash needs node=",
		},
		{
			"taskfail(attempt=2)",
			"faults: taskfail needs task=",
		},
		{
			"crash(node=1,when=3)",
			`faults: crash: bad argument "when=3": unknown argument`,
		},
		{
			"taskfail(task=1,dev=tpu)",
			`faults: taskfail: bad argument "dev=tpu": want any|cpu|gpu`,
		},
		{
			"crash(node=one,at=3)",
			`faults: crash: bad argument "node=one": strconv.Atoi: parsing "one": invalid syntax`,
		},
		{
			"hbloss(node 0)",
			`faults: hbloss: cannot parse argument "node 0"`,
		},
		{
			"slow node=1 at=2",
			`faults: unknown setting "slow node"`,
		},
		{
			"crash(node=1,at)",
			`faults: crash: cannot parse argument "at"`,
		},
		{
			"tempo=allegro",
			`faults: unknown setting "tempo"`,
		},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted, want %q", tc.spec, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("Parse(%q):\n got %q\nwant %q", tc.spec, err.Error(), tc.want)
		}
	}
}

// TestValidateErrorMessages pins the exact message for each out-of-range
// plan class, including the fault index and cluster size it reports.
func TestValidateErrorMessages(t *testing.T) {
	cases := []struct {
		plan *Plan
		want string
	}{
		{
			&Plan{CPUFailureRate: -0.1},
			"faults: CPU failure rate -0.1 outside [0,1)",
		},
		{
			&Plan{GPUFailureRate: 1.0},
			"faults: GPU failure rate 1 outside [0,1)",
		},
		{
			&Plan{Faults: []Fault{{Kind: NodeCrash, Node: 4, At: 1}}},
			"faults: fault 0 (node-crash): node 4 outside cluster of 4",
		},
		{
			&Plan{Faults: []Fault{
				{Kind: NodeCrash, Node: 0, At: 1},
				{Kind: GPURetire, Node: -1, At: 1},
			}},
			"faults: fault 1 (gpu-retire): node -1 outside cluster of 4",
		},
		{
			&Plan{Faults: []Fault{{Kind: NodeCrash, Node: 0, At: -1}}},
			"faults: fault 0 (node-crash): negative time -1",
		},
		{
			&Plan{Faults: []Fault{{Kind: HeartbeatLoss, Node: 0, At: 1}}},
			"faults: fault 0: heartbeat loss needs a positive duration",
		},
		{
			&Plan{Faults: []Fault{{Kind: Slowdown, Node: 0, At: 1, Duration: 5}}},
			"faults: fault 0: slowdown needs a positive factor",
		},
		{
			&Plan{Faults: []Fault{{Kind: TaskFail, Task: -1}}},
			"faults: fault 0: task-fail needs a task",
		},
		{
			&Plan{Faults: []Fault{{Kind: NodeCrash, Node: 0, At: 1, RestartAfter: -2}}},
			"faults: fault 0: negative restart delay",
		},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(4)
		if err == nil {
			t.Errorf("Validate accepted %+v, want %q", tc.plan, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("Validate(%+v):\n got %q\nwant %q", tc.plan, err.Error(), tc.want)
		}
	}
}
