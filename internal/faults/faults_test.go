package faults

import (
	"math"
	"testing"
)

func TestDrawKeyedByAttemptNotOrder(t *testing.T) {
	// The draw for a given (task, attempt, device) is a pure function of
	// the key: querying in any order, any number of times, returns the
	// same variate.
	a := Draw(7, 3, 1, true)
	for i := 0; i < 100; i++ {
		Draw(7, uint64OrderNoise(i), i%5, i%2 == 0) // interleave unrelated draws
	}
	if b := Draw(7, 3, 1, true); a != b {
		t.Fatalf("draw changed with call order: %v vs %v", a, b)
	}
	if Draw(7, 3, 1, true) == Draw(7, 3, 1, false) {
		t.Fatal("CPU and GPU draws collide")
	}
	if Draw(7, 3, 1, true) == Draw(7, 3, 2, true) {
		t.Fatal("attempt index ignored")
	}
	if Draw(7, 3, 1, true) == Draw(8, 3, 1, true) {
		t.Fatal("seed ignored")
	}
}

func uint64OrderNoise(i int) int { return (i * 37) % 11 }

func TestDrawIsUniformish(t *testing.T) {
	const n = 20000
	var sum float64
	hits := 0
	for task := 0; task < n; task++ {
		u := Draw(42, task, 0, true)
		if u < 0 || u >= 1 {
			t.Fatalf("draw out of range: %v", u)
		}
		sum += u
		if u < 0.3 {
			hits++
		}
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("P(u<0.3) = %v, want ~0.3", frac)
	}
}

func TestAttemptFailsTargets(t *testing.T) {
	// Rates are zero so only the targeted faults can fire.
	p := &Plan{
		Seed: 1,
		Faults: []Fault{
			{Kind: TaskFail, Task: 9, Attempt: -1, Device: AnyDevice},
			{Kind: TaskFail, Task: 4, Attempt: 1, Device: CPUDevice},
			{Kind: TaskFail, Task: 5, Attempt: 0, Device: GPUDevice},
		},
	}
	if !p.AttemptFails(9, 0, false) || !p.AttemptFails(9, 3, true) {
		t.Fatal("permanent task fault did not hit every attempt")
	}
	if !p.AttemptFails(4, 1, false) {
		t.Fatal("targeted CPU attempt fault missed")
	}
	if p.AttemptFails(4, 1, true) {
		t.Fatal("CPU-only fault hit the GPU path")
	}
	if p.AttemptFails(4, 0, false) {
		t.Fatal("attempt-targeted fault hit the wrong attempt")
	}
	if !p.AttemptFails(5, 0, true) || p.AttemptFails(5, 0, false) {
		t.Fatal("GPU-only fault mismatch")
	}
	for task := 0; task < 200; task++ {
		if task != 9 && p.AttemptFails(task, 3, false) {
			t.Fatalf("untargeted attempt failed with zero rates (task %d)", task)
		}
	}
	var nilPlan *Plan
	if nilPlan.AttemptFails(0, 0, true) {
		t.Fatal("nil plan injected a failure")
	}
	if !nilPlan.Empty() || !(&Plan{}).Empty() {
		t.Fatal("empty plans not recognized")
	}
}

func TestAttemptFailsRates(t *testing.T) {
	p := &Plan{Seed: 1, GPUFailureRate: 0.5}
	fails := 0
	for task := 0; task < 1000; task++ {
		if p.AttemptFails(task, 0, false) {
			t.Fatalf("CPU attempt failed with zero CPU rate (task %d)", task)
		}
		if p.AttemptFails(task, 0, true) {
			fails++
		}
	}
	if fails < 400 || fails > 600 {
		t.Fatalf("GPU failures = %d/1000 at rate 0.5", fails)
	}
}

func TestParseFullSpec(t *testing.T) {
	p, err := Parse("seed=7; gpurate=0.2; cpurate=0.01;" +
		"crash(node=1,at=5,restart=10); crash(node=2,at=8);" +
		"hbloss(node=0,at=2,for=8); retire(node=2,at=1);" +
		"slow(node=3,at=0,for=100,factor=4);" +
		"taskfail(task=7,attempt=0,dev=gpu); taskfail(task=3)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.GPUFailureRate != 0.2 || p.CPUFailureRate != 0.01 {
		t.Fatalf("scalars wrong: %+v", p)
	}
	if len(p.Faults) != 7 {
		t.Fatalf("parsed %d faults, want 7", len(p.Faults))
	}
	want := []Kind{NodeCrash, NodeCrash, HeartbeatLoss, GPURetire, Slowdown, TaskFail, TaskFail}
	for i, k := range want {
		if p.Faults[i].Kind != k {
			t.Fatalf("fault %d kind = %v, want %v", i, p.Faults[i].Kind, k)
		}
	}
	if p.Faults[0].RestartAfter != 10 || p.Faults[1].RestartAfter != 0 {
		t.Fatal("restart delays wrong")
	}
	if f := p.Faults[4]; f.Factor != 4 || f.Duration != 100 {
		t.Fatalf("slowdown parsed wrong: %+v", f)
	}
	if f := p.Faults[5]; f.Task != 7 || f.Attempt != 0 || f.Device != GPUDevice {
		t.Fatalf("taskfail parsed wrong: %+v", f)
	}
	if f := p.Faults[6]; f.Task != 3 || f.Attempt != -1 || f.Device != AnyDevice {
		t.Fatalf("bare taskfail parsed wrong: %+v", f)
	}
	if len(p.Scheduled()) != 5 {
		t.Fatalf("Scheduled() = %d faults, want 5 (taskfail excluded)", len(p.Scheduled()))
	}
	if err := p.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate(node=1)",
		"gpurate=1.5",
		"gpurate=x",
		"crash(at=1)",          // missing node
		"taskfail(attempt=2)",  // missing task
		"crash(node=1,when=3)", // unknown arg
		"slow node=1",
		"seed=abc",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	cases := []*Plan{
		{Faults: []Fault{{Kind: NodeCrash, Node: 4, At: 1}}},
		{Faults: []Fault{{Kind: NodeCrash, Node: -1, At: 1}}},
		{Faults: []Fault{{Kind: NodeCrash, Node: 0, At: -1}}},
		{Faults: []Fault{{Kind: HeartbeatLoss, Node: 0, At: 1}}}, // no duration
		{Faults: []Fault{{Kind: Slowdown, Node: 0, At: 1}}},      // no factor
		{Faults: []Fault{{Kind: TaskFail, Task: -1}}},            // no task
		{Faults: []Fault{{Kind: NodeCrash, Node: 0, RestartAfter: -2}}},
		{GPUFailureRate: 1.0},
		{CPUFailureRate: -0.1},
	}
	for i, p := range cases {
		if err := p.Validate(4); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(4); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Plan{Seed: 3, Faults: []Fault{{Kind: NodeCrash, Node: 1, At: 2}}}
	q := p.Clone()
	q.Faults[0].Node = 9
	q.Seed = 99
	if p.Faults[0].Node != 1 || p.Seed != 3 {
		t.Fatal("Clone aliases the original")
	}
	var nilPlan *Plan
	if nilPlan.Clone() != nil {
		t.Fatal("nil clone not nil")
	}
}

func TestFromGPUFailureRate(t *testing.T) {
	p := FromGPUFailureRate(0.25)
	if p.GPUFailureRate != 0.25 || p.CPUFailureRate != 0 || len(p.Faults) != 0 {
		t.Fatalf("shim plan wrong: %+v", p)
	}
	fails := 0
	for task := 0; task < 1000; task++ {
		if p.AttemptFails(task, 0, true) {
			fails++
		}
		if p.AttemptFails(task, 0, false) {
			t.Fatal("shim plan failed a CPU attempt")
		}
	}
	if fails < 180 || fails > 320 {
		t.Fatalf("shim failure fraction %d/1000 at rate 0.25", fails)
	}
}

func TestKindAndDeviceStrings(t *testing.T) {
	if NodeCrash.String() != "node-crash" || TaskFail.String() != "task-fail" {
		t.Fatal("kind names wrong")
	}
	if GPUDevice.String() != "gpu" || AnyDevice.String() != "any" {
		t.Fatal("device names wrong")
	}
	if Kind(99).String() == "" || Device(99).String() == "" {
		t.Fatal("unknown values must still print")
	}
}
