package faults

import "testing"

// FuzzParseSpec asserts the fault-spec parser never panics, never returns
// a plan together with an error, and that every accepted plan survives
// Validate against a small cluster without panicking.
func FuzzParseSpec(f *testing.F) {
	f.Add("seed=7;gpurate=0.3")
	f.Add("crash(node=1,at=5,restart=10);hbloss(node=0,at=2,for=8)")
	f.Add("retire(node=2,at=1);slow(node=3,at=0,for=100,factor=4)")
	f.Add("taskfail(task=7,attempt=0,dev=gpu);cpurate=0.05")
	f.Add(" crash( node = 1 , at = 5 ) ; ")
	f.Add("crash(node=1)")
	f.Add("bogus(node=1,at=2)")
	f.Add("seed=notanumber")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			if p != nil {
				t.Fatalf("both plan and error for %q: %v", spec, err)
			}
			return
		}
		if p == nil {
			t.Fatalf("nil plan and nil error for %q", spec)
		}
		_ = p.Validate(8)
	})
}
