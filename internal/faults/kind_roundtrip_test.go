package faults

import (
	"strings"
	"testing"
)

// allKinds walks the Kind space until String() falls through to its default
// branch, so the list tracks the taxonomy without a hand-maintained table.
func allKinds(t *testing.T) []Kind {
	t.Helper()
	var kinds []Kind
	for k := Kind(0); ; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			break
		}
		kinds = append(kinds, k)
	}
	if len(kinds) < 8 {
		t.Fatalf("found only %d kinds; taxonomy walk broken", len(kinds))
	}
	return kinds
}

// TestKindRoundTrip proves every Kind has a non-default String() and that
// ParseKind accepts exactly what String() prints, so a new fault kind can't
// silently miss the -faults CLI surface.
func TestKindRoundTrip(t *testing.T) {
	for _, k := range allKinds(t) {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind(%d) has default String %q", int(k), s)
			continue
		}
		got, err := ParseKind(s)
		if err != nil {
			t.Errorf("ParseKind(%q): %v", s, err)
			continue
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", s, got, k)
		}
	}
}

// TestKindSpecRoundTrip builds a minimal valid -faults call for every Kind
// using its canonical String() name and demands Parse yields a one-fault
// plan of that Kind that also passes Validate.
func TestKindSpecRoundTrip(t *testing.T) {
	for _, k := range allKinds(t) {
		var args string
		if timeScheduled(k) {
			switch k {
			case HeartbeatLoss:
				args = "node=0,at=1,for=2"
			case Slowdown:
				args = "node=0,at=1,factor=2"
			default:
				args = "node=0,at=1"
			}
		} else if k == InputCorrupt {
			args = "task=0,record=0"
		} else {
			args = "task=0"
		}
		spec := k.String() + "(" + args + ")"
		p, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if len(p.Faults) != 1 || p.Faults[0].Kind != k {
			t.Errorf("Parse(%q) = %+v, want one %v fault", spec, p.Faults, k)
			continue
		}
		if err := p.Validate(4); err != nil {
			t.Errorf("Validate after Parse(%q): %v", spec, err)
		}
	}
}
