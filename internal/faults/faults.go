// Package faults is HeteroDoop's deterministic fault-injection subsystem.
// A Plan describes everything that will go wrong during one simulated job:
// scheduled faults pinned to virtual-time instants (node crashes with or
// without restart, heartbeat loss, GPU device retirement, slowdowns) and
// probabilistic per-attempt task failures on the CPU and GPU paths.
//
// Determinism is the point. Probabilistic failure draws are keyed by
// (task, attempt, device) through a seeded hash rather than consumed from a
// shared RNG stream, so a plan's outcome for any given attempt is
// independent of scheduling order: reordering heartbeats, adding nodes, or
// changing the scheduler never silently changes which attempts fail.
// Identical plans and seeds reproduce identical fault sequences, which the
// engine turns into identical traces.
package faults

import (
	"errors"
	"fmt"
)

// Kind enumerates the fault taxonomy.
type Kind int

// Fault kinds.
const (
	// NodeCrash kills a TaskTracker process at Fault.At. Its running tasks
	// die silently and its local map outputs are lost; the JobTracker only
	// learns of the death through heartbeat expiry. RestartAfter > 0
	// restarts the tracker with a fresh identity after that delay.
	NodeCrash Kind = iota
	// HeartbeatLoss suppresses a tracker's heartbeats for Fault.Duration
	// seconds. The node keeps running but looks dead to the JobTracker,
	// which may expire it; on resume the tracker re-registers.
	HeartbeatLoss
	// GPURetire permanently retires one GPU on the node at Fault.At. A task
	// running on the retired device is aborted and falls back to the CPU
	// path.
	GPURetire
	// Slowdown multiplies the node's task durations by Fault.Factor for
	// Fault.Duration seconds (0 = for the rest of the job) — straggler
	// injection.
	Slowdown
	// TaskFail fails specific task attempts: task Fault.Task, attempt
	// Fault.Attempt (-1 = every attempt, i.e. a permanent task fault), on
	// the device class Fault.Device.
	TaskFail
	// MapOutputCorrupt silently corrupts a committed map attempt's output
	// partition on its serving node: task Fault.Task, attempt Fault.Attempt
	// (-1 = every attempt, i.e. an unrecoverable output), partition
	// Fault.Part (-1 = every partition). The corruption is only observable
	// when a reducer fetches the partition and its checksum verification
	// fails.
	MapOutputCorrupt
	// FetchFail makes a reducer's fetch of one map output partition fail
	// transiently: task Fault.Task, partition Fault.Part (-1 = every
	// partition of the task). The first Fault.Times fetch attempts fail
	// (-1 = every attempt, i.e. a permanently unfetchable output).
	FetchFail
	// InputCorrupt poisons record Fault.Record (split-relative index) of
	// input split Fault.Task. A mapper crashes on a poisoned record unless
	// the job runs in skip-bad-records mode, which drops the record and
	// accounts the skip.
	InputCorrupt
)

func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case HeartbeatLoss:
		return "heartbeat-loss"
	case GPURetire:
		return "gpu-retire"
	case Slowdown:
		return "slowdown"
	case TaskFail:
		return "task-fail"
	case MapOutputCorrupt:
		return "map-output-corrupt"
	case FetchFail:
		return "fetch-fail"
	case InputCorrupt:
		return "input-corrupt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a fault-kind name: both the compact call names the
// -faults spec uses (crash, hbloss, retire, slow, taskfail, corrupt,
// fetchfail, poison) and the canonical String() forms round-trip.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "crash", "node-crash":
		return NodeCrash, nil
	case "hbloss", "heartbeat-loss":
		return HeartbeatLoss, nil
	case "retire", "gpu-retire":
		return GPURetire, nil
	case "slow", "slowdown":
		return Slowdown, nil
	case "taskfail", "task-fail":
		return TaskFail, nil
	case "corrupt", "map-output-corrupt":
		return MapOutputCorrupt, nil
	case "fetchfail", "fetch-fail":
		return FetchFail, nil
	case "poison", "input-corrupt":
		return InputCorrupt, nil
	default:
		return 0, fmt.Errorf("faults: unknown fault kind %q", name)
	}
}

// Device selects which execution path a TaskFail fault hits.
type Device int

// Device classes.
const (
	AnyDevice Device = iota
	CPUDevice
	GPUDevice
)

func (d Device) String() string {
	switch d {
	case AnyDevice:
		return "any"
	case CPUDevice:
		return "cpu"
	case GPUDevice:
		return "gpu"
	default:
		return fmt.Sprintf("Device(%d)", int(d))
	}
}

// ErrInjected marks a failure as injected by a fault plan (as opposed to a
// genuine executor error). It is the leaf cause inside typed abort errors.
var ErrInjected = errors.New("faults: injected failure")

// ErrBadRecord marks a task failure caused by a poisoned input record
// (InputCorrupt). It unwraps to ErrInjected.
var ErrBadRecord = fmt.Errorf("faults: poisoned input record: %w", ErrInjected)

// ErrCorruptOutput marks a map output declared lost after checksum or fetch
// failures (MapOutputCorrupt / FetchFail). It unwraps to ErrInjected.
var ErrCorruptOutput = fmt.Errorf("faults: corrupt or unfetchable map output: %w", ErrInjected)

// Fault is one scheduled fault. Which fields matter depends on Kind; see
// the Kind constants.
type Fault struct {
	Kind Kind
	// Node is the target TaskTracker (all kinds except TaskFail).
	Node int
	// At is the virtual time the fault strikes (all kinds except TaskFail).
	At float64
	// RestartAfter (NodeCrash) restarts the node this many seconds after
	// the crash; 0 means the crash is permanent.
	RestartAfter float64
	// Duration bounds HeartbeatLoss and Slowdown windows (0 for Slowdown =
	// rest of the job).
	Duration float64
	// Factor is the Slowdown duration multiplier (> 1 slows the node).
	Factor float64
	// Task / Attempt / Device target TaskFail, MapOutputCorrupt, FetchFail,
	// and InputCorrupt faults. Attempt -1 hits every attempt of the task.
	Task    int
	Attempt int
	Device  Device
	// Part is the reduce partition a MapOutputCorrupt or FetchFail fault
	// hits (-1 = every partition of the task's output).
	Part int
	// Record is the split-relative record index an InputCorrupt fault
	// poisons.
	Record int
	// Times bounds FetchFail: the first Times fetch attempts of the
	// partition fail (-1 = every attempt).
	Times int
}

// Plan is a complete fault schedule for one job run.
type Plan struct {
	// Seed keys the probabilistic attempt draws. 0 lets the engine
	// substitute the job seed.
	Seed uint64
	// CPUFailureRate / GPUFailureRate are per-attempt transient failure
	// probabilities, drawn independently per (task, attempt).
	CPUFailureRate float64
	GPUFailureRate float64
	// CorruptRate is the probability that a committed map attempt's output
	// partition is silently corrupted, drawn independently per (task,
	// attempt, partition) — re-executed attempts draw fresh, so recovery
	// converges.
	CorruptRate float64
	// FetchFailRate is the probability that one fetch attempt of a map
	// output partition fails transiently, drawn independently per (task,
	// partition, fetch attempt).
	FetchFailRate float64
	// PoisonRate is the probability that an input record is poisoned,
	// drawn independently per (task, record).
	PoisonRate float64
	// Faults are the scheduled and targeted faults.
	Faults []Fault
}

// FromGPUFailureRate builds the plan equivalent of the legacy
// ClusterConfig.GPUFailureRate knob.
func FromGPUFailureRate(rate float64) *Plan {
	return &Plan{GPUFailureRate: rate}
}

// Clone returns a deep copy (the engine normalizes plans without mutating
// the caller's).
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	q := *p
	q.Faults = append([]Fault(nil), p.Faults...)
	return &q
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (p.CPUFailureRate <= 0 && p.GPUFailureRate <= 0 &&
		p.CorruptRate <= 0 && p.FetchFailRate <= 0 && p.PoisonRate <= 0 &&
		len(p.Faults) == 0)
}

// timeScheduled reports whether the kind fires at a virtual-time instant.
// The targeted data-path kinds (TaskFail, MapOutputCorrupt, FetchFail,
// InputCorrupt) strike when the engine touches the data, not at a clock
// tick.
func timeScheduled(k Kind) bool {
	switch k {
	case NodeCrash, HeartbeatLoss, GPURetire, Slowdown:
		return true
	}
	return false
}

// Scheduled returns the faults that fire at a virtual-time instant, in
// plan order. The engine installs them as simulation events; equal-time
// faults apply in plan order.
func (p *Plan) Scheduled() []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for _, f := range p.Faults {
		if timeScheduled(f.Kind) {
			out = append(out, f)
		}
	}
	return out
}

// AttemptFails reports whether attempt number `attempt` of map task `task`
// on the given device fails. Targeted TaskFail faults are checked first;
// otherwise the per-device rate decides via a draw keyed by
// (Seed, task, attempt, device) — never by draw order.
func (p *Plan) AttemptFails(task, attempt int, onGPU bool) bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Kind != TaskFail || f.Task != task {
			continue
		}
		if f.Attempt >= 0 && f.Attempt != attempt {
			continue
		}
		if f.Device == CPUDevice && onGPU {
			continue
		}
		if f.Device == GPUDevice && !onGPU {
			continue
		}
		return true
	}
	rate := p.CPUFailureRate
	if onGPU {
		rate = p.GPUFailureRate
	}
	if rate <= 0 {
		return false
	}
	return Draw(p.Seed, task, attempt, onGPU) < rate
}

// PartitionCorrupt reports whether partition `part` of map task `task`'s
// committed output from attempt number `attempt` is silently corrupted on
// its serving node. Targeted MapOutputCorrupt faults are checked first;
// otherwise CorruptRate decides via a draw keyed by (Seed, task, attempt,
// part) — never by draw order, so re-executed attempts draw fresh.
func (p *Plan) PartitionCorrupt(task, attempt, part int) bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Kind != MapOutputCorrupt || f.Task != task {
			continue
		}
		if f.Attempt >= 0 && f.Attempt != attempt {
			continue
		}
		if f.Part >= 0 && f.Part != part {
			continue
		}
		return true
	}
	if p.CorruptRate <= 0 {
		return false
	}
	return keyedDraw(p.Seed, saltCorrupt, task, attempt, part) < p.CorruptRate
}

// FetchFails reports whether fetch attempt number `attempt` of map task
// `task`'s output partition `part` fails transiently. Targeted FetchFail
// faults are checked first (the first Times attempts fail); otherwise
// FetchFailRate decides via a draw keyed by (Seed, task, part, attempt).
func (p *Plan) FetchFails(task, part, attempt int) bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Kind != FetchFail || f.Task != task {
			continue
		}
		if f.Part >= 0 && f.Part != part {
			continue
		}
		times := f.Times
		if times == 0 {
			times = 1 // zero-value Fault literals mean "fail once"
		}
		if times >= 0 && attempt >= times {
			continue
		}
		return true
	}
	if p.FetchFailRate <= 0 {
		return false
	}
	return keyedDraw(p.Seed, saltFetch, task, part, attempt) < p.FetchFailRate
}

// RecordPoisoned reports whether the split-relative record `record` of
// input split `task` is poisoned. Targeted InputCorrupt faults are checked
// first; otherwise PoisonRate decides via a draw keyed by (Seed, task,
// record).
func (p *Plan) RecordPoisoned(task, record int) bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Kind == InputCorrupt && f.Task == task && f.Record == record {
			return true
		}
	}
	if p.PoisonRate <= 0 {
		return false
	}
	return keyedDraw(p.Seed, saltPoison, task, record, 0) < p.PoisonRate
}

// Poisons reports whether the plan can poison input records at all — the
// cheap gate executors check before scanning a split's records.
func (p *Plan) Poisons() bool {
	if p == nil {
		return false
	}
	if p.PoisonRate > 0 {
		return true
	}
	for _, f := range p.Faults {
		if f.Kind == InputCorrupt {
			return true
		}
	}
	return false
}

// Domain salts keeping the data-integrity draw streams independent of the
// task-failure draws and of each other.
const (
	saltCorrupt uint64 = 0xA0761D6478BD642F
	saltFetch   uint64 = 0xE7037ED1A0B428DB
	saltPoison  uint64 = 0x8EBC6AF09C88C6E3
)

// Draw returns the uniform [0,1) variate keyed by (seed, task, attempt,
// device). Exported so tests and tools can predict plan outcomes.
func Draw(seed uint64, task, attempt int, onGPU bool) float64 {
	x := seed ^ 0x9E3779B97F4A7C15
	x = mix(x + uint64(task)*0xBF58476D1CE4E5B9)
	x = mix(x + uint64(attempt)*0x94D049BB133111EB)
	if onGPU {
		x = mix(x ^ 0xD6E8FEB86659FD93)
	} else {
		x = mix(x)
	}
	return float64(x>>11) / (1 << 53)
}

// keyedDraw is the splitmix64-keyed uniform [0,1) variate for the
// data-integrity fault streams: (seed, salt, a, b, c) fully determine the
// outcome regardless of scheduling or draw order.
func keyedDraw(seed, salt uint64, a, b, c int) float64 {
	x := seed ^ salt
	x = mix(x + uint64(a)*0xBF58476D1CE4E5B9)
	x = mix(x + uint64(b)*0x94D049BB133111EB)
	x = mix(x + uint64(c)*0x9E3779B97F4A7C15)
	return float64(x>>11) / (1 << 53)
}

// mix is the splitmix64 finalizer.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Validate checks the plan against a cluster size.
func (p *Plan) Validate(slaves int) error {
	if p == nil {
		return nil
	}
	if p.CPUFailureRate < 0 || p.CPUFailureRate >= 1 {
		return fmt.Errorf("faults: CPU failure rate %v outside [0,1)", p.CPUFailureRate)
	}
	if p.GPUFailureRate < 0 || p.GPUFailureRate >= 1 {
		return fmt.Errorf("faults: GPU failure rate %v outside [0,1)", p.GPUFailureRate)
	}
	if p.CorruptRate < 0 || p.CorruptRate >= 1 {
		return fmt.Errorf("faults: corruption rate %v outside [0,1)", p.CorruptRate)
	}
	if p.FetchFailRate < 0 || p.FetchFailRate >= 1 {
		return fmt.Errorf("faults: fetch failure rate %v outside [0,1)", p.FetchFailRate)
	}
	if p.PoisonRate < 0 || p.PoisonRate >= 1 {
		return fmt.Errorf("faults: poison rate %v outside [0,1)", p.PoisonRate)
	}
	for i, f := range p.Faults {
		if !timeScheduled(f.Kind) {
			if f.Task < 0 {
				return fmt.Errorf("faults: fault %d: %v needs a task", i, f.Kind)
			}
			if f.Kind == InputCorrupt && f.Record < 0 {
				return fmt.Errorf("faults: fault %d: input-corrupt needs a record", i)
			}
			continue
		}
		if f.Node < 0 || f.Node >= slaves {
			return fmt.Errorf("faults: fault %d (%v): node %d outside cluster of %d", i, f.Kind, f.Node, slaves)
		}
		if f.At < 0 {
			return fmt.Errorf("faults: fault %d (%v): negative time %v", i, f.Kind, f.At)
		}
		switch f.Kind {
		case HeartbeatLoss:
			if f.Duration <= 0 {
				return fmt.Errorf("faults: fault %d: heartbeat loss needs a positive duration", i)
			}
		case Slowdown:
			if f.Factor <= 0 {
				return fmt.Errorf("faults: fault %d: slowdown needs a positive factor", i)
			}
		case NodeCrash:
			if f.RestartAfter < 0 {
				return fmt.Errorf("faults: fault %d: negative restart delay", i)
			}
		}
	}
	return nil
}
