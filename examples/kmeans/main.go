// Kmeans: compiler-optimization ablations on the clustering benchmark.
//
// Kmeans is the paper's showcase for two GPU optimizations: placing the
// read-only centroid table in texture memory (§3.2, Fig. 7a) and record
// stealing across skewed movie-rating records (§4.1, Fig. 7d). This
// example toggles each optimization individually on a single map task and
// reports the map-kernel effect, then runs one full clustering iteration
// and prints the recomputed centroids.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpurt"
	"repro/internal/mr"
	"repro/internal/workload"
)

func main() {
	km := workload.Kmeans()
	job, err := core.CompileJob(core.JobSources{
		Name: "kmeans", Map: km.Job.MapSrc, Reduce: km.Job.ReduceSrc, Reducers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Skewed ratings records; large enough that threads process several
	// records each (record stealing needs contention to matter).
	input := km.Gen(3, 256<<10)
	setup := cluster.Cluster1()

	measure := func(label string, opts gpurt.Options) float64 {
		cmp, err := core.CompareTask(job, input, setup, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s map kernel %.6f s (task %.6f s, %.1fx vs CPU)\n",
			label, cmp.GPUTimes.Map, cmp.GPUTime, cmp.Speedup)
		return cmp.GPUTimes.Map
	}

	fmt.Println("== Optimization ablations (single map task) ==")
	all := measure("all optimizations", gpurt.AllOptimizations())

	noTex := gpurt.AllOptimizations()
	noTex.UseTexture = false
	tex := measure("without texture memory", noTex)

	noSteal := gpurt.AllOptimizations()
	noSteal.RecordStealing = false
	steal := measure("without record stealing", noSteal)

	fmt.Printf("\n  texture memory effect  : %.2fx on the map kernel (paper Fig. 7a: ~2x)\n", tex/all)
	fmt.Printf("  record stealing effect : %.2fx on the map kernel (paper Fig. 7d: up to 1.36x)\n", steal/all)

	// One full clustering iteration on the simulated cluster.
	small := setup
	small.Slaves = 4
	small.HDFS.DataNodes = 4
	small.HDFS.BlockSize = 16 << 10
	res, err := core.Run(job, input, core.RunOptions{Setup: &small, Scheduler: mr.TailSched})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== One kmeans iteration (%d map tasks, %d on GPU) ==\n",
		res.Stats.MapsOnCPU+res.Stats.MapsOnGPU, res.Stats.MapsOnGPU)
	fmt.Println("recomputed centroids (cluster: dim averages, truncated):")
	for _, line := range strings.Split(strings.TrimSpace(res.TextOutput()), "\n") {
		if len(line) > 76 {
			line = line[:76] + "..."
		}
		fmt.Println("  " + line)
	}
}
