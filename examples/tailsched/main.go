// Tailsched: the paper's Figure 3 scenario and a sweep over GPU speedups.
//
// Tail scheduling's key idea: load imbalance between CPU slots and a much
// faster GPU only hurts at the END of a job — when the final tasks land on
// slow CPU slots, the GPU idles. Forcing the tail onto the GPU removes the
// straggler. This example first reproduces the exact Figure-3 scenario
// (19 tasks, 2 CPU slots, 1 GPU at 6x) and then sweeps the GPU speedup to
// show where tail scheduling pays off.
//
//	go run ./examples/tailsched
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/mr"
)

func main() {
	fmt.Println("== Paper Figure 3 scenario ==")
	r, err := experiments.Fig3(experiments.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig3(r))

	fmt.Println("\n== Sweep: when does the tail matter? ==")
	fmt.Printf("%-12s %14s %14s %10s %8s\n", "GPU speedup", "gpu-first (s)", "tail (s)", "gain", "forced")
	for _, speedup := range []float64{2, 4, 6, 10, 20} {
		gf := runSched(mr.GPUFirst, speedup)
		tail, forced := runSchedStats(mr.TailSched, speedup)
		fmt.Printf("%9.0fx   %14.1f %14.1f %9.2fx %8d\n",
			speedup, gf, tail, gf/tail, forced)
	}
	fmt.Println("\nThe gain comes entirely from the last wave: careful")
	fmt.Println("GPU-speedup-based scheduling of the tailing tasks avoids the")
	fmt.Println("imbalance (paper §6).")
}

func runSched(s mr.SchedulerKind, speedup float64) float64 {
	m, _ := runSchedStats(s, speedup)
	return m
}

func runSchedStats(s mr.SchedulerKind, speedup float64) (float64, int) {
	stats, err := mr.RunJob(mr.ClusterConfig{
		Slaves: 1, Node: mr.NodeConfig{MapSlots: 2, ReduceSlots: 1, GPUs: 1},
		Scheduler: s, HeartbeatSec: 0.5,
	}, &mr.SampledExecutor{
		Splits: 19, Reducers: 0, Slaves: 1,
		CPUDur: []float64{60}, GPUDur: []float64{60 / speedup},
	})
	if err != nil {
		log.Fatal(err)
	}
	return stats.Makespan, stats.ForcedGPUTasks
}
