// BlackScholes: the paper's most compute-intensive benchmark (map-only
// option pricing, 128 volatility scenarios per option).
//
// This example reproduces two observations from the paper at single-task
// granularity: the large GPU speedup (§7.4: up to 47x on real hardware)
// and the bottleneck shift — on the GPU the task spends most of its time
// writing output, not computing (§7.4: 62% output write, up from 1% on the
// CPU).
//
//	go run ./examples/blackscholes
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpurt"
	"repro/internal/workload"
)

func main() {
	bs := workload.BlackScholes()
	job, err := core.CompileJob(core.JobSources{
		Name: "blackscholes", Map: bs.Job.MapSrc, Reducers: 0,
	})
	if err != nil {
		log.Fatal(err)
	}

	input := bs.Gen(99, 64<<10)
	setup := cluster.Cluster1()

	cmp, err := core.CompareTask(job, input, setup, gpurt.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("options priced      : %d (%d KV pairs)\n", cmp.Records, cmp.KVPairs)
	fmt.Printf("CPU task (1 core)   : %.6f s\n", cmp.CPUTime)
	fmt.Printf("GPU task            : %.6f s\n", cmp.GPUTime)
	fmt.Printf("single-task speedup : %.1fx\n\n", cmp.Speedup)

	fmt.Println("GPU task breakdown (the bottleneck moves to the output write):")
	total := cmp.GPUTimes.Total()
	for _, st := range cmp.GPUTimes.Stages() {
		if st.Time == 0 {
			continue
		}
		bar := ""
		for i := 0; i < int(st.Time/total*50); i++ {
			bar += "#"
		}
		fmt.Printf("  %-13s %6.1f%% %s\n", st.Name, 100*st.Time/total, bar)
	}
}
