// Quickstart: the paper's wordcount (Listings 1 and 2) end to end.
//
// A single sequential MiniC source with HeteroDoop directives is compiled
// once and executed on both targets: the Hadoop Streaming CPU path and the
// translated GPU kernels. The job then runs on a simulated CPU+GPU cluster
// with tail scheduling, and the output is the real word counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/workload"
)

func main() {
	// 1. Compile the directive-annotated sources (one source, two targets).
	wc := workload.Wordcount()
	job, err := core.CompileJob(core.JobSources{
		Name:     "wordcount",
		Map:      wc.Job.MapSrc,     // paper Listing 1
		Combine:  wc.Job.CombineSrc, // paper Listing 2
		Reduce:   wc.Job.ReduceSrc,
		Reducers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Generated GPU kernel (first lines) ==")
	for i, line := range strings.SplitN(job.CUDA(), "\n", 8) {
		if i == 7 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + line)
	}

	// 2. Generate a synthetic text corpus and run the job on a small
	// simulated cluster, once CPU-only (baseline Hadoop) and once with a
	// GPU per node under tail scheduling.
	input := workload.TextCorpus(7, 192<<10)
	setup := cluster.Cluster1()
	setup.Slaves = 4
	setup.HDFS.DataNodes = 4
	setup.HDFS.BlockSize = 4 << 10
	// A small demo cluster: 2 map slots per node so the 48 map tasks run
	// in several waves and the GPU's contribution is visible.
	setup.Node.MapSlots = 2

	baseline, err := core.Run(job, input, core.RunOptions{Setup: &setup, Scheduler: mr.CPUOnly})
	if err != nil {
		log.Fatal(err)
	}
	hetero, err := core.Run(job, input, core.RunOptions{Setup: &setup, Scheduler: mr.TailSched})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Job results ==")
	fmt.Printf("CPU-only Hadoop : makespan %.6f s (virtual)\n", baseline.Stats.Makespan)
	fmt.Printf("HeteroDoop      : makespan %.6f s (virtual), %.2fx speedup\n",
		hetero.Stats.Makespan, baseline.Stats.Makespan/hetero.Stats.Makespan)
	fmt.Printf("map placement   : %d CPU / %d GPU tasks\n",
		hetero.Stats.MapsOnCPU, hetero.Stats.MapsOnGPU)

	// 3. Both paths must produce identical output.
	if baseline.TextOutput() != hetero.TextOutput() {
		log.Fatal("outputs differ between CPU-only and heterogeneous runs!")
	}
	fmt.Println("\n== Top of the (identical) output ==")
	lines := strings.Split(strings.TrimSpace(hetero.TextOutput()), "\n")
	for i, line := range lines {
		if i >= 8 {
			fmt.Printf("  ... %d more words\n", len(lines)-i)
			break
		}
		fmt.Println("  " + line)
	}
}
