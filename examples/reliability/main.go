// Reliability: fault tolerance and straggler handling.
//
// Paper §5.1: "a task failure is communicated to the Hadoop scheduler so
// that it can reschedule the task; the failed GPU is revived so that
// future tasks can still be issued to it." This example injects GPU task
// failures into a wordcount job and shows that the output is unaffected.
// It then demonstrates two extensions this reproduction adds around the
// paper's future-work note on inter-node heterogeneity (§9): per-node
// speed skew and speculative execution of stragglers.
//
//	go run ./examples/reliability
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/workload"
)

func main() {
	wc := workload.Wordcount()
	job, err := core.CompileJob(core.JobSources{
		Name: "wordcount", Map: wc.Job.MapSrc, Combine: wc.Job.CombineSrc,
		Reduce: wc.Job.ReduceSrc, Reducers: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	input := workload.TextCorpus(21, 128<<10)
	setup := cluster.Cluster1()
	setup.Slaves = 4
	setup.HDFS.DataNodes = 4
	setup.HDFS.BlockSize = 4 << 10
	setup.Node.MapSlots = 2

	fmt.Println("== GPU task failure injection (paper §5.1) ==")
	clean, err := core.Run(job, input, core.RunOptions{Setup: &setup, Scheduler: mr.GPUFirst})
	if err != nil {
		log.Fatal(err)
	}
	faulty, err := core.Run(job, input, core.RunOptions{
		Setup: &setup, Scheduler: mr.GPUFirst, GPUFailureRate: 0.3, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  failure-free run : makespan %.6f s\n", clean.Stats.Makespan)
	fmt.Printf("  30%% GPU failures : makespan %.6f s, %d attempts rescheduled\n",
		faulty.Stats.Makespan, faulty.Stats.Retries)
	if clean.TextOutput() == faulty.TextOutput() {
		fmt.Println("  output identical despite failures ✓")
	} else {
		log.Fatal("  OUTPUT DIVERGED — fault tolerance broken")
	}

	fmt.Println("\n== Straggler node + speculative execution (extension) ==")
	exec := &mr.SampledExecutor{
		Splits: 160, Reducers: 0, Slaves: 4,
		CPUDur: []float64{10}, GPUDur: []float64{2},
		NodeSpeed: []float64{4, 1, 1, 1}, // node 0 is 4x slower
		Jitter:    0.2,
	}
	run := func(spec bool) *mr.JobStats {
		stats, err := mr.RunJob(mr.ClusterConfig{
			Slaves: 4, Node: mr.NodeConfig{MapSlots: 4, ReduceSlots: 1},
			Scheduler: mr.CPUOnly, HeartbeatSec: 0.5,
			SpeculativeExecution: spec, Seed: 3,
		}, exec)
		if err != nil {
			log.Fatal(err)
		}
		return stats
	}
	off := run(false)
	on := run(true)
	fmt.Printf("  without speculation : makespan %.1f s\n", off.Makespan)
	fmt.Printf("  with speculation    : makespan %.1f s (%.2fx), %d backups launched, %d won\n",
		on.Makespan, off.Makespan/on.Makespan, on.SpeculativeLaunched, on.SpeculativeWon)

	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("Hadoop's retry machinery plus HeteroDoop's GPU driver revival")
	fmt.Println("keep heterogeneous jobs exactly-once correct under failures.")
}
