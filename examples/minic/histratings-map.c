
int main() {
	int bin, one, read;
	char *line;
	size_t nbytes = 10000;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(bin) value(one) kvpairs(64) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		int i = 0;
		while (i < read && line[i] != ' ') i++;
		while (i < read) {
			if (line[i] >= '0' && line[i] <= '9') {
				bin = atoi(line + i);
				one = 1;
				printf("%d\t%d\n", bin, one);
				while (i < read && line[i] >= '0' && line[i] <= '9') i++;
			} else {
				i++;
			}
		}
	}
	free(line);
	return 0;
}