
int main() {
	int component, read;
	double val;
	char *line;
	size_t nbytes = 10000;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(component) value(val) kvpairs(4) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		int rid = atoi(line);
		int i = 0, f = 0;
		double x = 0.0, y = 0.0;
		while (i < read) {
			if (line[i] == ' ') {
				f++;
				if (f == 1) x = atof(line + i + 1);
				if (f == 2) y = atof(line + i + 1);
			}
			i++;
		}
		double w = 1.0;
		for (int it = 0; it < 24; it++) {
			w = exp(log(w + 1.0e-9) * 0.5) * sqrt(1.0 + x * x * 0.001);
		}
		component = rid * 4;
		val = x * w;
		printf("%d\t%f\n", component, val);
		component = rid * 4 + 1;
		val = y * w;
		printf("%d\t%f\n", component, val);
		component = rid * 4 + 2;
		val = x * x * w;
		printf("%d\t%f\n", component, val);
		component = rid * 4 + 3;
		val = x * y * w;
		printf("%d\t%f\n", component, val);
	}
	free(line);
	return 0;
}