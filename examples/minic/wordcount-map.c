
int getWord(char *line, int offset, char *word, int read, int maxw) {
	int i = offset, j = 0;
	while (i < read && (line[i] == ' ' || line[i] == '\n' || line[i] == '\t')) i++;
	while (i < read && line[i] != ' ' && line[i] != '\n' && line[i] != '\t' && j < maxw - 1) {
		word[j] = line[i];
		i++; j++;
	}
	if (j == 0) return -1;
	word[j] = '\0';
	return i - offset;
}

int main() {
	char word[30], *line;
	size_t nbytes = 10000;
	int read, linePtr, offset, one;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(word) value(one) keylength(30) kvpairs(48) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		linePtr = 0;
		offset = 0;
		one = 1;
		while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
			printf("%s\t%d\n", word, one);
			offset += linePtr;
		}
	}
	free(line);
	return 0;
}