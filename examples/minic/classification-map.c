
int main() {
	double centroids[1024];
	char *line;
	int cid, movieId, read;
	int K = 32;
	int D = 32;
	size_t nbytes = 10000;
	for (int k = 0; k < 32; k++) {
		for (int d = 0; d < 32; d++) {
			centroids[k * 32 + d] = (double)((k * 7 + d * 3) % 10);
		}
	}
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(cid) value(movieId) kvpairs(1) sharedRO(K, D) texture(centroids) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		double pt[32];
		int n = 0, i = 0;
		movieId = atoi(line);
		while (i < read && line[i] != ' ') i++;
		while (i < read && n < 32) {
			if (line[i] >= '0' && line[i] <= '9') {
				pt[n] = (double) atoi(line + i);
				n++;
				while (i < read && line[i] >= '0' && line[i] <= '9') i++;
			} else {
				i++;
			}
		}
		if (n > 0) {
			double best = 1.0e30;
			cid = 0;
			for (int k = 0; k < K; k++) {
				double dist = 0.0;
				for (int d = 0; d < n; d++) {
					double diff = pt[d] - centroids[k * D + d];
					dist += diff * diff;
				}
				if (dist < best) {
					best = dist;
					cid = k;
				}
			}
			printf("%d\t%d\n", cid, movieId);
		}
	}
	free(line);
	return 0;
}