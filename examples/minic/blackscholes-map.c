
double CNDF(double x) {
	return 0.5 * (1.0 + erf(x / sqrt(2.0)));
}
int main() {
	int id, read;
	double price;
	char *line;
	size_t nbytes = 10000;
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(id) value(price) kvpairs(1) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		double S = 0.0, X = 0.0, T = 0.0;
		int i = 0, f = 0;
		id = atoi(line);
		while (i < read) {
			if (line[i] == ' ') {
				f++;
				if (f == 1) S = atof(line + i + 1);
				if (f == 2) X = atof(line + i + 1);
				if (f == 3) T = atof(line + i + 1);
			}
			i++;
		}
		if (T < 0.01) T = 0.01;
		if (X < 1.0) X = 1.0;
		price = 0.0;
		for (int it = 0; it < 128; it++) {
			double sigma = 0.1 + (double) it * 0.002;
			double sqrtT = sqrt(T);
			double d1 = (log(S / X) + (0.05 + sigma * sigma / 2.0) * T) / (sigma * sqrtT);
			double d2 = d1 - sigma * sqrtT;
			price += S * CNDF(d1) - X * exp(-0.05 * T) * CNDF(d2);
		}
		price = price / 128.0;
		printf("%d\t%f\n", id, price);
	}
	free(line);
	return 0;
}