
int main() {
	char word[8], pattern[8], *line;
	size_t nbytes = 10000;
	int read, cnt;
	strcpy(pattern, "ing");
	line = (char*) malloc(nbytes * sizeof(char));
	#pragma mapreduce mapper key(word) value(cnt) keylength(8) sharedRO(pattern) blocks(30) threads(64)
	while ((read = getline(&line, &nbytes, stdin)) != -1) {
		cnt = 0;
		for (int i = 0; i < read; i++) {
			int j = 0;
			while (pattern[j] != '\0' && i + j < read && line[i + j] == pattern[j]) j++;
			if (pattern[j] == '\0') cnt++;
		}
		if (cnt > 0) {
			strcpy(word, pattern);
			printf("%s\t%d\n", word, cnt);
		}
	}
	free(line);
	return 0;
}