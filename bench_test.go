// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (§7). Each benchmark regenerates its artifact and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation at a reduced (but shape-preserving)
// scale. The bodies live in internal/perf/benchsuite so cmd/hdbench's
// baseline/regression pipeline measures the exact same code; these
// wrappers keep the `go test -bench` names stable.
package repro_test

import (
	"testing"

	"repro/internal/perf/benchsuite"
)

func BenchmarkTable2(b *testing.B)              { benchsuite.Table2(b) }
func BenchmarkTable3(b *testing.B)              { benchsuite.Table3(b) }
func BenchmarkFig3TailScheduling(b *testing.B)  { benchsuite.Fig3TailScheduling(b) }
func BenchmarkFig4aCluster1(b *testing.B)       { benchsuite.Fig4aCluster1(b) }
func BenchmarkFig4bCluster2(b *testing.B)       { benchsuite.Fig4bCluster2(b) }
func BenchmarkFig5TaskSpeedups(b *testing.B)    { benchsuite.Fig5TaskSpeedups(b) }
func BenchmarkFig6Breakdown(b *testing.B)       { benchsuite.Fig6Breakdown(b) }
func BenchmarkFig7aTexture(b *testing.B)        { benchsuite.Fig7aTexture(b) }
func BenchmarkFig7bVectorCombine(b *testing.B)  { benchsuite.Fig7bVectorCombine(b) }
func BenchmarkFig7cVectorMap(b *testing.B)      { benchsuite.Fig7cVectorMap(b) }
func BenchmarkFig7dRecordStealing(b *testing.B) { benchsuite.Fig7dRecordStealing(b) }
func BenchmarkFig7eAggregation(b *testing.B)    { benchsuite.Fig7eAggregation(b) }
func BenchmarkSchedulerAblation(b *testing.B)   { benchsuite.SchedulerAblation(b) }
func BenchmarkStealingGranularity(b *testing.B) { benchsuite.StealingGranularity(b) }
func BenchmarkSpeculativeExecution(b *testing.B) {
	benchsuite.SpeculativeExecution(b)
}
func BenchmarkMapTaskGPU(b *testing.B) { benchsuite.MapTaskGPU(b) }

// TestBenchSuiteNamesMatch pins the wrapper names above to the registry the
// baseline pipeline measures — a drifted name would silently decouple
// `go test -bench` from `hdbench -baseline`.
func TestBenchSuiteNamesMatch(t *testing.T) {
	want := map[string]bool{
		"BenchmarkTable2": true, "BenchmarkTable3": true,
		"BenchmarkFig3TailScheduling": true, "BenchmarkFig4aCluster1": true,
		"BenchmarkFig4bCluster2": true, "BenchmarkFig5TaskSpeedups": true,
		"BenchmarkFig6Breakdown": true, "BenchmarkFig7aTexture": true,
		"BenchmarkFig7bVectorCombine": true, "BenchmarkFig7cVectorMap": true,
		"BenchmarkFig7dRecordStealing": true, "BenchmarkFig7eAggregation": true,
		"BenchmarkSchedulerAblation": true, "BenchmarkStealingGranularity": true,
		"BenchmarkSpeculativeExecution": true, "BenchmarkMapTaskGPU": true,
	}
	got := benchsuite.All()
	if len(got) != len(want) {
		t.Fatalf("suite has %d benchmarks, wrappers cover %d", len(got), len(want))
	}
	for _, b := range got {
		if !want[b.Name] {
			t.Errorf("suite benchmark %s has no go-test wrapper", b.Name)
		}
	}
}
