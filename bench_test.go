// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (§7). Each benchmark regenerates its artifact and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation at a reduced (but shape-preserving)
// scale. cmd/hdbench runs the same harnesses at configurable scale.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/gpurt"
	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/workload"
)

// benchCfg keeps `go test -bench=.` affordable; cmd/hdbench defaults are
// larger.
var benchCfg = experiments.Config{SplitBytes: 8 << 10, Variants: 1, TaskScale: 0.25, Seed: 7}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig3TailScheduling(b *testing.B) {
	var r experiments.Fig3Result
	var err error
	var rec *obs.Recorder
	for i := 0; i < b.N; i++ {
		rec = obs.NewRecorder()
		r, err = experiments.Fig3(experiments.Config{Obs: rec})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Improvement(), "tail-gain-x")
	// Headline counters flow out through the metrics registry.
	if forced, ok := rec.Metrics().Value("mr_forced_gpu_total", obs.L("sched", "tail")); ok {
		b.ReportMetric(forced, "forced-gpu-tasks")
	}
	if wait, ok := rec.Metrics().Value("mr_gpu_queue_wait_seconds_total", obs.L("sched", "tail")); ok {
		b.ReportMetric(wait, "gpu-queue-wait-s")
	}
}

func BenchmarkFig4aCluster1(b *testing.B) {
	var rows []experiments.Fig4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig4a(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var tails []float64
	var best float64
	for _, r := range rows {
		v := r.Speedups["1GPU+tail"]
		tails = append(tails, v)
		if v > best {
			best = v
		}
	}
	b.ReportMetric(experiments.GeoMean(tails), "geomean-speedup-x")
	b.ReportMetric(best, "max-speedup-x")
}

func BenchmarkFig4bCluster2(b *testing.B) {
	var rows []experiments.Fig4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig4b(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var best float64
	for _, r := range rows {
		if v := r.Speedups["3GPU+tail"]; v > best {
			best = v
		}
	}
	b.ReportMetric(best, "max-3gpu-speedup-x")
}

func BenchmarkFig5TaskSpeedups(b *testing.B) {
	var rows []experiments.Fig5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig5(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].OptSpeedup, "max-task-speedup-x")
	b.ReportMetric(rows[0].OptSpeedup, "min-task-speedup-x")
}

func BenchmarkFig6Breakdown(b *testing.B) {
	var rows []experiments.Fig6Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig6(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Code == "BS" {
			b.ReportMetric(100*r.Fractions["output write"], "bs-outputwrite-pct")
		}
	}
}

func benchFig7(b *testing.B, fn func(experiments.Config) ([]experiments.Fig7Row, error)) {
	var rows []experiments.Fig7Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = fn(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, r := range rows {
		if r.Speedup > best {
			best = r.Speedup
		}
	}
	b.ReportMetric(best, "max-kernel-speedup-x")
}

func BenchmarkFig7aTexture(b *testing.B)        { benchFig7(b, experiments.Fig7Texture) }
func BenchmarkFig7bVectorCombine(b *testing.B)  { benchFig7(b, experiments.Fig7VectorCombine) }
func BenchmarkFig7cVectorMap(b *testing.B)      { benchFig7(b, experiments.Fig7VectorMap) }
func BenchmarkFig7dRecordStealing(b *testing.B) { benchFig7(b, experiments.Fig7RecordStealing) }
func BenchmarkFig7eAggregation(b *testing.B)    { benchFig7(b, experiments.Fig7Aggregation) }

// BenchmarkSchedulerAblation compares the three schedulers head-to-head on
// one synthetic workload (the DESIGN.md scheduler ablation).
func BenchmarkSchedulerAblation(b *testing.B) {
	rec := obs.NewRecorder()
	run := func(s mr.SchedulerKind, gpus int) float64 {
		stats, err := mr.RunJob(mr.ClusterConfig{
			Slaves: 8, Node: mr.NodeConfig{MapSlots: 4, ReduceSlots: 2, GPUs: gpus},
			Scheduler: s, HeartbeatSec: 0.5, Obs: rec,
		}, &mr.SampledExecutor{
			Splits: 640, Reducers: 16, Slaves: 8,
			CPUDur: []float64{20}, GPUDur: []float64{2},
			MapOutputBytes: 1 << 20, ReduceCompute: 5, ShuffleGBs: 4, Jitter: 0.3,
		})
		if err != nil {
			b.Fatal(err)
		}
		return stats.Makespan
	}
	var cpu, gf, tail float64
	for i := 0; i < b.N; i++ {
		cpu = run(mr.CPUOnly, 0)
		gf = run(mr.GPUFirst, 1)
		tail = run(mr.TailSched, 1)
	}
	b.ReportMetric(cpu/gf, "gpufirst-speedup-x")
	b.ReportMetric(cpu/tail, "tail-speedup-x")
	if hb, ok := rec.Metrics().Value("mr_heartbeats_total", obs.L("sched", "tail")); ok {
		b.ReportMetric(hb/float64(b.N), "tail-heartbeats/op")
	}
}

// BenchmarkStealingGranularity compares the three record-distribution
// strategies of DESIGN.md's ablation list: static partitioning, the
// paper's per-threadblock stealing, and device-wide global-atomic
// stealing (the alternative the paper rejects in §4.1).
func BenchmarkStealingGranularity(b *testing.B) {
	km := workload.Kmeans()
	input := km.Gen(3, 64<<10)
	job, err := mr.CompileJob(km.JobFor(1))
	if err != nil {
		b.Fatal(err)
	}
	dev, err := gpu.NewDevice(gpu.TeslaK40())
	if err != nil {
		b.Fatal(err)
	}
	measure := func(steal, global bool) float64 {
		opts := gpurt.AllOptimizations()
		opts.RecordStealing = steal
		opts.GlobalStealing = global
		res, err := gpurt.RunTask(dev, job.MapC, nil, input, gpurt.TaskConfig{
			NumReducers: 4, Opts: opts,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Times.Map
	}
	var static, block, global float64
	for i := 0; i < b.N; i++ {
		static = measure(false, false)
		block = measure(true, false)
		global = measure(true, true)
	}
	b.ReportMetric(static/block, "block-vs-static-x")
	b.ReportMetric(global/block, "block-vs-global-x")
}

// BenchmarkSpeculativeExecution measures the extension's effect on a
// cluster with one straggler node (inter-node heterogeneity).
func BenchmarkSpeculativeExecution(b *testing.B) {
	makeExec := func() *mr.SampledExecutor {
		return &mr.SampledExecutor{
			Splits: 160, Reducers: 0, Slaves: 4,
			CPUDur: []float64{10}, GPUDur: []float64{2},
			NodeSpeed: []float64{4, 1, 1, 1}, Jitter: 0.2,
		}
	}
	run := func(spec bool) float64 {
		stats, err := mr.RunJob(mr.ClusterConfig{
			Slaves: 4, Node: mr.NodeConfig{MapSlots: 4, ReduceSlots: 1},
			Scheduler: mr.CPUOnly, HeartbeatSec: 0.5,
			SpeculativeExecution: spec, Seed: 3,
		}, makeExec())
		if err != nil {
			b.Fatal(err)
		}
		return stats.Makespan
	}
	var off, on float64
	for i := 0; i < b.N; i++ {
		off = run(false)
		on = run(true)
	}
	b.ReportMetric(off/on, "speculation-gain-x")
}

// BenchmarkMapTaskGPU measures the wall cost of one functional GPU task
// (translator + SIMT interpreter + runtime), the building block every
// experiment samples.
func BenchmarkMapTaskGPU(b *testing.B) {
	wc := workload.Wordcount()
	input := wc.Gen(5, 8<<10)
	cfg := benchCfg
	cfg.Variants = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(experiments.Config{SplitBytes: len(input), Variants: 1, Seed: 5, TaskScale: 0.01})
		if err != nil {
			b.Fatal(err)
		}
		_ = rows
	}
}
