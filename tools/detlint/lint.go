// Command detlint is a determinism linter for the simulation engine and
// its satellites: packages whose outputs must be bit-reproducible across
// runs and Go releases. It is stdlib-only (go/ast + go/parser) and flags
// three hazard classes:
//
//  1. importing math/rand (seeded or not, stream stability is not
//     guaranteed across Go releases; the repo uses its own splitmix64),
//  2. calling time.Now (wall-clock reads make virtual-time runs diverge),
//  3. ranging over a map (iteration order is randomized) — except the
//     collect-keys-then-sort idiom, where the loop body is a single
//     `xs = append(xs, k)` statement,
//  4. launching a bare goroutine (`go f()`) — unsynchronized concurrency
//     makes effect order host-dependent; engine packages must route
//     parallel work through sim.Pool, whose results are applied in
//     canonical event order,
//  5. using sync.Map — its iteration and internal promotion behaviour are
//     unordered and unsynchronized with the virtual clock; use an ordinary
//     map plus deterministic ordering (or sim.Pool futures).
//
// A finding is suppressed by a `//detlint:ignore <reason>` comment on the
// offending line or the line directly above it.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
)

// finding is one determinism hazard.
type finding struct {
	pos  token.Position
	rule string
	msg  string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.pos.Filename, f.pos.Line, f.rule, f.msg)
}

// lintSource parses one Go file and returns its findings.
func lintSource(name, src string) ([]finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	l := &linter{fset: fset, file: file}
	l.collectIgnores()
	l.collectTimeName()
	l.collectMapNames()
	l.run()
	return l.findings, nil
}

type linter struct {
	fset     *token.FileSet
	file     *ast.File
	findings []finding

	// ignores maps line numbers carrying a detlint:ignore comment.
	ignores map[int]bool
	// timeName is the local import name of the "time" package ("" if not
	// imported).
	timeName string
	// syncName is the local import name of the "sync" package ("" if not
	// imported).
	syncName string
	// mapNames are identifiers (variables and struct field names) with
	// file-local syntactic evidence of a map type.
	mapNames map[string]bool
}

func (l *linter) report(pos token.Pos, rule, msg string) {
	p := l.fset.Position(pos)
	if l.ignores[p.Line] || l.ignores[p.Line-1] {
		return
	}
	l.findings = append(l.findings, finding{pos: p, rule: rule, msg: msg})
}

func (l *linter) collectIgnores() {
	l.ignores = map[int]bool{}
	for _, cg := range l.file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if strings.HasPrefix(text, "detlint:ignore") {
				l.ignores[l.fset.Position(c.Pos()).Line] = true
			}
		}
	}
}

func (l *linter) collectTimeName() {
	for _, imp := range l.file.Imports {
		switch strings.Trim(imp.Path.Value, `"`) {
		case "time":
			l.timeName = "time"
			if imp.Name != nil {
				l.timeName = imp.Name.Name
			}
		case "sync":
			l.syncName = "sync"
			if imp.Name != nil {
				l.syncName = imp.Name.Name
			}
		}
	}
}

// collectMapNames gathers identifiers with syntactic map-type evidence:
// `var x map[...]`, `x := make(map[...]...)`, `x := map[...]{...}`, struct
// fields and function parameters/results declared with a map type.
func (l *linter) collectMapNames() {
	l.mapNames = map[string]bool{}
	isMapType := func(e ast.Expr) bool {
		_, ok := e.(*ast.MapType)
		return ok
	}
	isMapExpr := func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.CallExpr:
			if fn, ok := x.Fun.(*ast.Ident); ok && fn.Name == "make" && len(x.Args) >= 1 {
				return isMapType(x.Args[0])
			}
		case *ast.CompositeLit:
			return x.Type != nil && isMapType(x.Type)
		}
		return false
	}
	addField := func(f *ast.Field) {
		if !isMapType(f.Type) {
			return
		}
		for _, n := range f.Names {
			l.mapNames[n.Name] = true
		}
	}
	ast.Inspect(l.file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ValueSpec:
			if x.Type != nil && isMapType(x.Type) {
				for _, id := range x.Names {
					l.mapNames[id.Name] = true
				}
			}
			for i, v := range x.Values {
				if i < len(x.Names) && isMapExpr(v) {
					l.mapNames[x.Names[i].Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i < len(x.Lhs) && isMapExpr(rhs) {
					if id, ok := x.Lhs[i].(*ast.Ident); ok {
						l.mapNames[id.Name] = true
					}
				}
			}
		case *ast.StructType:
			if x.Fields != nil {
				for _, f := range x.Fields.List {
					addField(f)
				}
			}
		case *ast.FuncType:
			if x.Params != nil {
				for _, f := range x.Params.List {
					addField(f)
				}
			}
			if x.Results != nil {
				for _, f := range x.Results.List {
					addField(f)
				}
			}
		}
		return true
	})
}

func (l *linter) run() {
	for _, imp := range l.file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "math/rand" || path == "math/rand/v2" {
			l.report(imp.Pos(), "rand-import",
				"math/rand streams are not stable across Go releases; use the repo's seeded splitmix64")
		}
	}
	ast.Inspect(l.file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Now" {
				if id, ok := sel.X.(*ast.Ident); ok && l.timeName != "" && id.Name == l.timeName {
					l.report(x.Pos(), "time-now",
						"wall-clock read in a virtual-time package; thread the simulated clock instead")
				}
			}
		case *ast.RangeStmt:
			if l.rangesOverMap(x.X) && !isCollectKeysBody(x.Body) {
				l.report(x.Pos(), "map-iteration",
					"map iteration order is randomized; collect keys and sort, or iterate a sorted slice")
			}
		case *ast.GoStmt:
			l.report(x.Pos(), "bare-goroutine",
				"bare goroutine in an engine package; route parallel work through sim.Pool so effects apply in canonical event order")
		case *ast.SelectorExpr:
			if l.syncName != "" && x.Sel.Name == "Map" {
				if id, ok := x.X.(*ast.Ident); ok && id.Name == l.syncName {
					l.report(x.Pos(), "sync-map",
						"sync.Map is unordered and unsynchronized with the virtual clock; use a plain map with deterministic ordering or sim.Pool futures")
				}
			}
		}
		return true
	})
}

// rangesOverMap reports whether e has file-local evidence of being a map:
// a known map identifier, or a selector whose field name is a known map
// field.
func (l *linter) rangesOverMap(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return l.mapNames[x.Name]
	case *ast.SelectorExpr:
		return l.mapNames[x.Sel.Name]
	}
	return false
}

// isCollectKeysBody recognizes the allowed idiom: a body consisting of a
// single `xs = append(xs, expr)` statement (keys are collected, then sorted
// outside the loop).
func isCollectKeysBody(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) != 1 {
		return false
	}
	as, ok := body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	return ok && fn.Name == "append"
}
