package main

import (
	"strings"
	"testing"
)

func lintOK(t *testing.T, src string) []finding {
	t.Helper()
	fs, err := lintSource("test.go", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fs
}

func TestFlagsMathRandImport(t *testing.T) {
	fs := lintOK(t, `package p
import "math/rand"
var _ = rand.Int
`)
	if len(fs) != 1 || fs[0].rule != "rand-import" {
		t.Fatalf("want one rand-import finding, got %v", fs)
	}
}

func TestFlagsTimeNow(t *testing.T) {
	fs := lintOK(t, `package p
import "time"
func f() int64 { return time.Now().UnixNano() }
`)
	if len(fs) != 1 || fs[0].rule != "time-now" {
		t.Fatalf("want one time-now finding, got %v", fs)
	}
}

func TestRenamedTimeImportStillFlagged(t *testing.T) {
	fs := lintOK(t, `package p
import clock "time"
func f() clock.Time { return clock.Now() }
`)
	if len(fs) != 1 || fs[0].rule != "time-now" {
		t.Fatalf("want one time-now finding, got %v", fs)
	}
}

func TestOtherNowCallsNotFlagged(t *testing.T) {
	fs := lintOK(t, `package p
type clock struct{}
func (clock) Now() int64 { return 0 }
func f(c clock) int64 { return c.Now() }
`)
	if len(fs) != 0 {
		t.Fatalf("method Now on a non-time receiver should pass, got %v", fs)
	}
}

func TestFlagsMapRange(t *testing.T) {
	fs := lintOK(t, `package p
import "fmt"
func f() {
	m := map[string]int{}
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`)
	if len(fs) != 1 || fs[0].rule != "map-iteration" {
		t.Fatalf("want one map-iteration finding, got %v", fs)
	}
}

func TestFlagsStructFieldMapRange(t *testing.T) {
	fs := lintOK(t, `package p
import "fmt"
type s struct{ series map[string]int }
func f(x *s) {
	for k := range x.series {
		fmt.Println(k)
	}
}
`)
	if len(fs) != 1 || fs[0].rule != "map-iteration" {
		t.Fatalf("want one map-iteration finding, got %v", fs)
	}
}

func TestCollectKeysSortIdiomAllowed(t *testing.T) {
	fs := lintOK(t, `package p
import "sort"
func f(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`)
	if len(fs) != 0 {
		t.Fatalf("collect-keys-sort idiom should pass, got %v", fs)
	}
}

func TestSliceRangeNotFlagged(t *testing.T) {
	fs := lintOK(t, `package p
import "fmt"
func f(xs []int) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("slice range should pass, got %v", fs)
	}
}

func TestIgnoreCommentSuppresses(t *testing.T) {
	fs := lintOK(t, `package p
import "fmt"
func f(m map[string]int) {
	n := 0
	//detlint:ignore order-independent summation
	for _, v := range m {
		n += v
	}
	fmt.Println(n)
}
`)
	if len(fs) != 0 {
		t.Fatalf("ignore comment should suppress, got %v", fs)
	}
}

func TestFindingFormat(t *testing.T) {
	fs := lintOK(t, `package p
import "math/rand"
var _ = rand.Int
`)
	if len(fs) != 1 {
		t.Fatalf("want one finding, got %v", fs)
	}
	if got := fs[0].String(); !strings.HasPrefix(got, "test.go:2: rand-import:") {
		t.Fatalf("finding format = %q", got)
	}
}
