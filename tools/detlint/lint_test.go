package main

import (
	"strings"
	"testing"
)

func lintOK(t *testing.T, src string) []finding {
	t.Helper()
	fs, err := lintSource("test.go", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fs
}

func TestFlagsMathRandImport(t *testing.T) {
	fs := lintOK(t, `package p
import "math/rand"
var _ = rand.Int
`)
	if len(fs) != 1 || fs[0].rule != "rand-import" {
		t.Fatalf("want one rand-import finding, got %v", fs)
	}
}

func TestFlagsTimeNow(t *testing.T) {
	fs := lintOK(t, `package p
import "time"
func f() int64 { return time.Now().UnixNano() }
`)
	if len(fs) != 1 || fs[0].rule != "time-now" {
		t.Fatalf("want one time-now finding, got %v", fs)
	}
}

func TestRenamedTimeImportStillFlagged(t *testing.T) {
	fs := lintOK(t, `package p
import clock "time"
func f() clock.Time { return clock.Now() }
`)
	if len(fs) != 1 || fs[0].rule != "time-now" {
		t.Fatalf("want one time-now finding, got %v", fs)
	}
}

func TestOtherNowCallsNotFlagged(t *testing.T) {
	fs := lintOK(t, `package p
type clock struct{}
func (clock) Now() int64 { return 0 }
func f(c clock) int64 { return c.Now() }
`)
	if len(fs) != 0 {
		t.Fatalf("method Now on a non-time receiver should pass, got %v", fs)
	}
}

func TestFlagsMapRange(t *testing.T) {
	fs := lintOK(t, `package p
import "fmt"
func f() {
	m := map[string]int{}
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`)
	if len(fs) != 1 || fs[0].rule != "map-iteration" {
		t.Fatalf("want one map-iteration finding, got %v", fs)
	}
}

func TestFlagsStructFieldMapRange(t *testing.T) {
	fs := lintOK(t, `package p
import "fmt"
type s struct{ series map[string]int }
func f(x *s) {
	for k := range x.series {
		fmt.Println(k)
	}
}
`)
	if len(fs) != 1 || fs[0].rule != "map-iteration" {
		t.Fatalf("want one map-iteration finding, got %v", fs)
	}
}

func TestCollectKeysSortIdiomAllowed(t *testing.T) {
	fs := lintOK(t, `package p
import "sort"
func f(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`)
	if len(fs) != 0 {
		t.Fatalf("collect-keys-sort idiom should pass, got %v", fs)
	}
}

func TestSliceRangeNotFlagged(t *testing.T) {
	fs := lintOK(t, `package p
import "fmt"
func f(xs []int) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("slice range should pass, got %v", fs)
	}
}

func TestIgnoreCommentSuppresses(t *testing.T) {
	fs := lintOK(t, `package p
import "fmt"
func f(m map[string]int) {
	n := 0
	//detlint:ignore order-independent summation
	for _, v := range m {
		n += v
	}
	fmt.Println(n)
}
`)
	if len(fs) != 0 {
		t.Fatalf("ignore comment should suppress, got %v", fs)
	}
}

func TestFlagsBareGoroutine(t *testing.T) {
	fs := lintOK(t, `package p
func f() {
	go func() {}()
}
`)
	if len(fs) != 1 || fs[0].rule != "bare-goroutine" {
		t.Fatalf("want one bare-goroutine finding, got %v", fs)
	}
}

func TestIgnoredGoroutineSuppressed(t *testing.T) {
	fs := lintOK(t, `package p
func f() {
	//detlint:ignore bare-goroutine: pool worker, results applied in event order
	go f()
}
`)
	if len(fs) != 0 {
		t.Fatalf("annotated goroutine should pass, got %v", fs)
	}
}

func TestFlagsSyncMap(t *testing.T) {
	fs := lintOK(t, `package p
import "sync"
var m sync.Map
func f() { m.Store("k", 1) }
`)
	if len(fs) != 1 || fs[0].rule != "sync-map" {
		t.Fatalf("want one sync-map finding, got %v", fs)
	}
}

func TestRenamedSyncImportStillFlagged(t *testing.T) {
	fs := lintOK(t, `package p
import s "sync"
type t struct{ m s.Map }
`)
	if len(fs) != 1 || fs[0].rule != "sync-map" {
		t.Fatalf("want one sync-map finding, got %v", fs)
	}
}

func TestSyncMutexNotFlagged(t *testing.T) {
	fs := lintOK(t, `package p
import "sync"
type t struct {
	mu sync.Mutex
	wg sync.WaitGroup
}
`)
	if len(fs) != 0 {
		t.Fatalf("sync.Mutex/WaitGroup should pass, got %v", fs)
	}
}

func TestOtherMapSelectorNotFlagged(t *testing.T) {
	fs := lintOK(t, `package p
type registry struct{ Map func() }
func f(r registry) { r.Map() }
`)
	if len(fs) != 0 {
		t.Fatalf("non-sync Map selector should pass, got %v", fs)
	}
}

func TestFindingFormat(t *testing.T) {
	fs := lintOK(t, `package p
import "math/rand"
var _ = rand.Int
`)
	if len(fs) != 1 {
		t.Fatalf("want one finding, got %v", fs)
	}
	if got := fs[0].String(); !strings.HasPrefix(got, "test.go:2: rand-import:") {
		t.Fatalf("finding format = %q", got)
	}
}
