package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Usage: detlint dir [dir ...]
//
// Lints every non-test .go file under the given directories (recursively)
// and exits 1 when any determinism hazard is found.
func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: detlint dir [dir ...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range dirs {
		err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			findings, err := lintSource(path, string(data))
			if err != nil {
				return fmt.Errorf("parse %s: %w", path, err)
			}
			for _, f := range findings {
				fmt.Println(f.String())
				bad++
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", bad)
		os.Exit(1)
	}
}
