package main

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/mr"
	"repro/internal/workload"
)

// bcSection is one disassembly section of a benchmark dump.
type bcSection struct {
	title string
	prog  *bytecode.Program
}

// dumpBytecode compiles one built-in benchmark by code (WC, BS, ...) and
// writes the register-bytecode disassembly of every interpreted stage: the
// map and combine host programs, the reduce filter, and the GPU kernel
// fragments the bytecode compiler produced for the map/combine regions.
func dumpBytecode(w io.Writer, code string) error {
	b := workload.ByCode(strings.ToUpper(code))
	if b == nil {
		return fmt.Errorf("hdbench: unknown benchmark %q (try WC, BS, LR, ...)", code)
	}
	cj, err := mr.CompileJob(b.JobFor(1))
	if err != nil {
		return err
	}
	sections := []bcSection{
		{"map host program", cj.MapC.VM},
		{"map kernel condition", cj.MapC.KernelCond},
		{"map kernel body", cj.MapC.KernelBody},
	}
	if cj.CombineC != nil {
		sections = append(sections,
			bcSection{"combine host program", cj.CombineC.VM},
			bcSection{"combine kernel region", cj.CombineC.KernelRegion})
	}
	if cj.ReduceF != nil {
		sections = append(sections, bcSection{"reduce filter", cj.ReduceF.Code})
	}
	for _, s := range sections {
		if s.prog == nil {
			continue
		}
		fmt.Fprintf(w, "== %s: %s ==\n", b.Code, s.title)
		if _, err := io.WriteString(w, bytecode.Disassemble(s.prog)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
