// Command hdbench regenerates the paper's evaluation tables and figures
// (Table 2, Table 3, Figures 3-7) from the simulated system, and doubles
// as the performance-tracking harness: it measures the benchmark suite
// into a schema-versioned baseline file and gates regressions against it.
//
// Usage:
//
//	hdbench -exp all
//	hdbench -exp fig4a -split-kb 32 -variants 3 -task-scale 1
//	hdbench -exp fig6 -hdprof -prof-top 20
//	hdbench -baseline                      (write BENCH_baseline.json)
//	hdbench -check                         (compare, exit 1 on regression)
//	hdbench -check -short -threshold 1.0   (cheap CI gate)
//	hdbench -opt-report                    (per-pass SSA optimizer stats)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/perf/benchsuite"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2 table3 fig3 fig4a fig4b fig5 fig6 fig7a fig7b fig7c fig7d fig7e ablation faultsweep all")
	faultSpec := flag.String("faults", "", "extra fault plan for the faultsweep custom row (see faults.Parse)")
	splitKB := flag.Int("split-kb", 16, "scaled fileSplit size in KB for task sampling")
	variants := flag.Int("variants", 2, "distinct splits sampled per benchmark and device")
	taskScale := flag.Float64("task-scale", 1.0, "multiplier on the paper's Table-2 task counts")
	seed := flag.Uint64("seed", 0, "input seed (0 = default)")
	novm := flag.Bool("novm", false, "disable the register-bytecode VM: every interpreted task walks the AST")
	dumpBC := flag.String("dump-bytecode", "", "print the register-bytecode disassembly of a benchmark's stages (e.g. WC) and exit")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the simulated jobs to this file")
	metricsPath := flag.String("metrics", "", "write a Prometheus-style metrics dump to this file")
	workers := flag.Int("workers", runtime.NumCPU(), "host worker-pool size for experiment sweeps; 1 = serial, results are byte-identical for every value")

	baseline := flag.Bool("baseline", false, "measure the benchmark suite and write -baseline-file")
	checkMode := flag.Bool("check", false, "measure the suite and compare against -baseline-file; exit 1 on regression")
	baselineFile := flag.String("baseline-file", "BENCH_baseline.json", "baseline file for -baseline / -check")
	repeat := flag.Int("repeat", 3, "samples per benchmark in -baseline / -check mode")
	short := flag.Bool("short", false, "restrict -baseline / -check to the cheap Short subset")
	filter := flag.String("filter", "", "substring filter on benchmark names in -baseline / -check mode")
	threshold := flag.Float64("threshold", 0, "ns/op regression allowance as a fraction, before noise bands (0 = default 0.25)")
	allowEnvMismatch := flag.Bool("allow-env-mismatch", false, "compare across differing Go version / CPU count with a warning instead of an error")
	optReport := flag.Bool("opt-report", false, "print per-pass SSA optimizer statistics for the benchmark programs and exit")
	vmReport := flag.Bool("vm-report", false, "measure every benchmark's map stage on the VM and the tree-walker and print the speedup table")

	hdprof := flag.Bool("hdprof", false, "attach the wall-clock cost profiler to the experiment run and print the hot-path report")
	profTop := flag.Int("prof-top", 15, "rows in the -hdprof hot-path table")
	profFolded := flag.String("prof-folded", "", "write -hdprof folded-stack flamegraph lines to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile to this file")
	flag.Parse()

	stopProfiles, err := startPprof(*cpuProfile, *mutexProfile)
	check(err)

	if *novm {
		benchsuite.Cfg.DisableVM = true
	}

	if *dumpBC != "" {
		check(dumpBytecode(os.Stdout, *dumpBC))
		check(stopProfiles())
		return
	}

	if *optReport {
		check(runOptReport(os.Stdout))
		check(stopProfiles())
		return
	}

	if *vmReport {
		check(runVMReport(os.Stdout, *seed+7, 32))
		check(stopProfiles())
		return
	}

	if *baseline || *checkMode {
		code := runBaseline(baselineOpts{
			write:            *baseline,
			compare:          *checkMode,
			file:             *baselineFile,
			repeat:           *repeat,
			short:            *short,
			filter:           *filter,
			threshold:        *threshold,
			allowEnvMismatch: *allowEnvMismatch,
		})
		check(stopProfiles())
		check(writeHeapProfile(*memProfile))
		os.Exit(code)
	}

	var rec *obs.Recorder
	if *tracePath != "" || *metricsPath != "" {
		rec = obs.NewRecorder()
	}
	var prof *perf.Profiler
	if *hdprof || *profFolded != "" {
		prof = perf.New()
	}
	cfg := experiments.Config{
		SplitBytes: *splitKB << 10,
		Variants:   *variants,
		TaskScale:  *taskScale,
		Seed:       *seed,
		DisableVM:  *novm,
		Obs:        rec,
		Prof:       prof,
		Workers:    *workers,
	}

	wants := strings.Split(strings.ToLower(*exp), ",")
	selected := func(name string) bool {
		for _, w := range wants {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}
	ran := 0

	if selected("table2") {
		fmt.Print(experiments.FormatTable2(experiments.Table2()))
		fmt.Println()
		ran++
	}
	if selected("table3") {
		fmt.Print(experiments.FormatTable3(experiments.Table3()))
		fmt.Println()
		ran++
	}
	if selected("fig3") {
		r, err := experiments.Fig3(cfg)
		check(err)
		fmt.Print(experiments.FormatFig3(r))
		fmt.Println()
		ran++
	}
	if selected("fig5") {
		rows, err := experiments.Fig5(cfg)
		check(err)
		fmt.Print(experiments.FormatFig5(rows))
		fmt.Println()
		ran++
	}
	if selected("fig6") {
		rows, err := experiments.Fig6(cfg)
		check(err)
		fmt.Print(experiments.FormatFig6(rows))
		fmt.Println()
		ran++
	}
	if selected("fig4a") {
		rows, err := experiments.Fig4a(cfg)
		check(err)
		fmt.Print(experiments.FormatFig4("Figure 4a: HeteroDoop on Cluster1 (CPU + 1 GPU per node)",
			rows, []string{"1GPU+gpufirst", "1GPU+tail"}))
		fmt.Println()
		ran++
	}
	if selected("fig4b") {
		rows, err := experiments.Fig4b(cfg)
		check(err)
		fmt.Print(experiments.FormatFig4("Figure 4b: HeteroDoop on Cluster2 (multi-GPU scaling)",
			rows, []string{"1GPU+gpufirst", "1GPU+tail", "2GPU+gpufirst", "2GPU+tail", "3GPU+gpufirst", "3GPU+tail"}))
		fmt.Println()
		ran++
	}
	panels := []struct {
		name  string
		title string
		fn    func(experiments.Config) ([]experiments.Fig7Row, error)
	}{
		{"fig7a", "Figure 7a: Effect of texture memory on map kernels", experiments.Fig7Texture},
		{"fig7b", "Figure 7b: Effect of vectorized read/write on combine kernels", experiments.Fig7VectorCombine},
		{"fig7c", "Figure 7c: Effect of vectorized read/write on map kernels", experiments.Fig7VectorMap},
		{"fig7d", "Figure 7d: Effect of record stealing on map kernels", experiments.Fig7RecordStealing},
		{"fig7e", "Figure 7e: Effect of KV pair aggregation on sort kernels", experiments.Fig7Aggregation},
	}
	for _, p := range panels {
		if selected(p.name) || selected("fig7") {
			rows, err := p.fn(cfg)
			check(err)
			fmt.Print(experiments.FormatFig7(p.title, rows))
			fmt.Println()
			ran++
		}
	}
	if selected("faultsweep") || selected("faults") {
		var plan *faults.Plan
		if *faultSpec != "" {
			var err error
			plan, err = faults.Parse(*faultSpec)
			check(err)
		}
		rows, err := experiments.FaultSweep(cfg, plan)
		check(err)
		fmt.Print(experiments.FormatFaultSweep(rows))
		fmt.Println()
		ran++
	}
	if selected("ablation") || selected("ablations") {
		r, err := experiments.Ablations(cfg)
		check(err)
		fmt.Print(experiments.FormatAblations(r))
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "hdbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if prof != nil {
		snap := prof.Snapshot()
		if *hdprof {
			fmt.Println()
			snap.WriteTable(os.Stdout, *profTop)
		}
		check(writeFolded(snap, *profFolded))
		if rec != nil {
			rec.Metrics().RecordCostProfile(snap)
		}
	}
	check(writeObs(rec, *tracePath, *metricsPath))
	check(stopProfiles())
	check(writeHeapProfile(*memProfile))
}

// baselineOpts parameterizes one -baseline / -check invocation.
type baselineOpts struct {
	write, compare   bool
	file             string
	repeat           int
	short            bool
	filter           string
	threshold        float64
	allowEnvMismatch bool
}

// runBaseline measures the suite once, optionally compares against the
// stored baseline, and optionally re-writes it. With both -baseline and
// -check the comparison gates the write: a regressed run leaves the old
// baseline in place. Returns the process exit code.
func runBaseline(o baselineOpts) int {
	benches := benchsuite.Select(o.short, o.filter)
	if len(benches) == 0 {
		fmt.Fprintf(os.Stderr, "hdbench: no benchmarks match -short=%v -filter=%q\n", o.short, o.filter)
		return 2
	}
	fmt.Fprintf(os.Stderr, "hdbench: measuring %d benchmarks x %d samples\n", len(benches), o.repeat)
	cur := benchsuite.Measure(benches, o.repeat, o.short, nil, os.Stderr)

	if o.compare {
		f, err := os.Open(o.file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: -check: %v (run -baseline first)\n", err)
			return 1
		}
		base, err := perf.DecodeBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: -check: %s: %v\n", o.file, err)
			return 1
		}
		th := perf.DefaultThresholds()
		if o.threshold > 0 {
			th.TimeFrac = o.threshold
		}
		th.AllowEnvMismatch = o.allowEnvMismatch
		rep, err := perf.Compare(base, cur, th)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: -check: %v\n", err)
			return 1
		}
		rep.Write(os.Stdout)
		if !rep.OK() {
			return 1
		}
	}
	if o.write {
		f, err := os.Create(o.file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: -baseline: %v\n", err)
			return 1
		}
		if err := cur.Encode(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "hdbench: -baseline: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: -baseline: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s (%d benchmarks, %d samples each)\n", o.file, len(cur.Benchmarks), cur.Repeat)
	}
	return 0
}

// startPprof begins the requested Go runtime profiles and returns a stop
// function that finishes them.
func startPprof(cpuPath, mutexPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if mutexPath != "" {
			f, err := os.Create(mutexPath)
			if err != nil {
				return err
			}
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// writeHeapProfile dumps the heap profile after a final GC, the standard
// -memprofile semantics.
func writeHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFolded dumps the flamegraph-ready folded stacks.
func writeFolded(snap perf.Snapshot, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteFolded(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeObs dumps the recorder's trace and metrics to the requested files.
func writeObs(rec *obs.Recorder, tracePath, metricsPath string) error {
	if rec == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.Tracer().WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := rec.Metrics().WriteProm(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdbench:", err)
		os.Exit(1)
	}
}
