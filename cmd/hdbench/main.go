// Command hdbench regenerates the paper's evaluation tables and figures
// (Table 2, Table 3, Figures 3-7) from the simulated system.
//
// Usage:
//
//	hdbench -exp all
//	hdbench -exp fig4a -split-kb 32 -variants 3 -task-scale 1
//	hdbench -exp fig7e
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2 table3 fig3 fig4a fig4b fig5 fig6 fig7a fig7b fig7c fig7d fig7e ablation faultsweep all")
	faultSpec := flag.String("faults", "", "extra fault plan for the faultsweep custom row (see faults.Parse)")
	splitKB := flag.Int("split-kb", 16, "scaled fileSplit size in KB for task sampling")
	variants := flag.Int("variants", 2, "distinct splits sampled per benchmark and device")
	taskScale := flag.Float64("task-scale", 1.0, "multiplier on the paper's Table-2 task counts")
	seed := flag.Uint64("seed", 0, "input seed (0 = default)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the simulated jobs to this file")
	metricsPath := flag.String("metrics", "", "write a Prometheus-style metrics dump to this file")
	flag.Parse()

	var rec *obs.Recorder
	if *tracePath != "" || *metricsPath != "" {
		rec = obs.NewRecorder()
	}
	cfg := experiments.Config{
		SplitBytes: *splitKB << 10,
		Variants:   *variants,
		TaskScale:  *taskScale,
		Seed:       *seed,
		Obs:        rec,
	}

	wants := strings.Split(strings.ToLower(*exp), ",")
	selected := func(name string) bool {
		for _, w := range wants {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}
	ran := 0

	if selected("table2") {
		fmt.Print(experiments.FormatTable2(experiments.Table2()))
		fmt.Println()
		ran++
	}
	if selected("table3") {
		fmt.Print(experiments.FormatTable3(experiments.Table3()))
		fmt.Println()
		ran++
	}
	if selected("fig3") {
		r, err := experiments.Fig3(cfg)
		check(err)
		fmt.Print(experiments.FormatFig3(r))
		fmt.Println()
		ran++
	}
	if selected("fig5") {
		rows, err := experiments.Fig5(cfg)
		check(err)
		fmt.Print(experiments.FormatFig5(rows))
		fmt.Println()
		ran++
	}
	if selected("fig6") {
		rows, err := experiments.Fig6(cfg)
		check(err)
		fmt.Print(experiments.FormatFig6(rows))
		fmt.Println()
		ran++
	}
	if selected("fig4a") {
		rows, err := experiments.Fig4a(cfg)
		check(err)
		fmt.Print(experiments.FormatFig4("Figure 4a: HeteroDoop on Cluster1 (CPU + 1 GPU per node)",
			rows, []string{"1GPU+gpufirst", "1GPU+tail"}))
		fmt.Println()
		ran++
	}
	if selected("fig4b") {
		rows, err := experiments.Fig4b(cfg)
		check(err)
		fmt.Print(experiments.FormatFig4("Figure 4b: HeteroDoop on Cluster2 (multi-GPU scaling)",
			rows, []string{"1GPU+gpufirst", "1GPU+tail", "2GPU+gpufirst", "2GPU+tail", "3GPU+gpufirst", "3GPU+tail"}))
		fmt.Println()
		ran++
	}
	panels := []struct {
		name  string
		title string
		fn    func(experiments.Config) ([]experiments.Fig7Row, error)
	}{
		{"fig7a", "Figure 7a: Effect of texture memory on map kernels", experiments.Fig7Texture},
		{"fig7b", "Figure 7b: Effect of vectorized read/write on combine kernels", experiments.Fig7VectorCombine},
		{"fig7c", "Figure 7c: Effect of vectorized read/write on map kernels", experiments.Fig7VectorMap},
		{"fig7d", "Figure 7d: Effect of record stealing on map kernels", experiments.Fig7RecordStealing},
		{"fig7e", "Figure 7e: Effect of KV pair aggregation on sort kernels", experiments.Fig7Aggregation},
	}
	for _, p := range panels {
		if selected(p.name) || selected("fig7") {
			rows, err := p.fn(cfg)
			check(err)
			fmt.Print(experiments.FormatFig7(p.title, rows))
			fmt.Println()
			ran++
		}
	}
	if selected("faultsweep") || selected("faults") {
		var plan *faults.Plan
		if *faultSpec != "" {
			var err error
			plan, err = faults.Parse(*faultSpec)
			check(err)
		}
		rows, err := experiments.FaultSweep(cfg, plan)
		check(err)
		fmt.Print(experiments.FormatFaultSweep(rows))
		fmt.Println()
		ran++
	}
	if selected("ablation") || selected("ablations") {
		r, err := experiments.Ablations(cfg)
		check(err)
		fmt.Print(experiments.FormatAblations(r))
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "hdbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	check(writeObs(rec, *tracePath, *metricsPath))
}

// writeObs dumps the recorder's trace and metrics to the requested files.
func writeObs(rec *obs.Recorder, tracePath, metricsPath string) error {
	if rec == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.Tracer().WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := rec.Metrics().WriteProm(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdbench:", err)
		os.Exit(1)
	}
}
