package main

import (
	"bytes"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/workload"
)

// runOptReport compiles every benchmark stage program with the SSA
// optimizer enabled and prints one row of per-pass rewrite counts per
// optimized program: map/combine stages yield a host row and a kernel
// row (the translated GPU program is optimized separately), reduce
// stages a single host row, matching what internal/mr actually executes.
func runOptReport(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "program\ttarget\tfold\tbranch\ttrim\tdse\tdeadinit\tcopy\tcse\tlicm\tnodes")
	total := &ir.Stats{}
	row := func(name, target string, st *ir.Stats) {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d->%d\n",
			name, target, st.Folded, st.Branches, st.Trimmed, st.Stores,
			st.Inits, st.Copies, st.CSE, st.LICM, st.NodesBefore, st.NodesAfter)
		total.Add(st)
		total.NodesBefore += st.NodesBefore
		total.NodesAfter += st.NodesAfter
	}
	for _, b := range workload.All() {
		stages := []struct{ suffix, src string }{
			{"map", b.Job.MapSrc},
			{"combine", b.Job.CombineSrc},
			{"reduce", b.Job.ReduceSrc},
		}
		for _, st := range stages {
			if st.src == "" {
				continue
			}
			name := fmt.Sprintf("%s-%s.c", b.Code, st.suffix)
			if st.suffix == "reduce" {
				// Reduce stages are plain streaming programs (no pragma);
				// the engine optimizes the parsed program directly.
				prog, err := minic.ParseAndCheckFile(name, st.src)
				if err != nil {
					return err
				}
				row(name, "host", ir.OptimizeProgram(prog))
				continue
			}
			c, err := compiler.CompileOpts(st.src, compiler.Options{File: name})
			if err != nil {
				return err
			}
			row(name, "host", c.HostOpt)
			row(name, "kernel", c.KernelOpt)
		}
	}
	fmt.Fprintf(tw, "TOTAL\t\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d->%d\n",
		total.Folded, total.Branches, total.Trimmed, total.Stores,
		total.Inits, total.Copies, total.CSE, total.LICM,
		total.NodesBefore, total.NodesAfter)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return runOptCost(w)
}

// optCostInput sizes the per-benchmark sample fed to the interpreter for
// the cumulative cost table; small enough to keep `make opt-report`
// interactive, large enough that the per-record loop dominates.
const optCostInput = 8 << 10

// runOptCost prints the measured interpreter cost (CountingSink ops) of
// every benchmark map stage under cumulative pass sets, i.e. each column
// adds one pass to the ones left of it. This is the dynamic counterpart
// of the rewrite-count table: it shows what each pass actually buys on
// the per-record hot path.
func runOptCost(w io.Writer) error {
	sets := []struct {
		name string
		mask ir.Pass
	}{
		{"none", 0},
		{"+fold", ir.PassFold},
		{"+dse", ir.PassFold | ir.PassDSE},
		{"+copy", ir.PassFold | ir.PassDSE | ir.PassCopy},
		{"+cse", ir.PassFold | ir.PassDSE | ir.PassCopy | ir.PassCSE},
		{"+licm", ir.AllPasses},
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprint(tw, "map stage\tinput")
	for _, s := range sets {
		fmt.Fprintf(tw, "\t%s", s.name)
	}
	fmt.Fprintln(tw)
	for _, b := range workload.All() {
		input := b.Gen(1, optCostInput)
		name := fmt.Sprintf("%s-map.c", b.Code)
		var base int64
		fmt.Fprintf(tw, "%s\t%dB", name, len(input))
		for _, s := range sets {
			ops, err := interpCost(name, b.Job.MapSrc, s.mask, input)
			if err != nil {
				return err
			}
			if s.mask == 0 {
				base = ops
				fmt.Fprintf(tw, "\t%d ops", ops)
				continue
			}
			fmt.Fprintf(tw, "\t%+.1f%%", 100*float64(ops-base)/float64(base))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// interpCost parses src fresh (optimization mutates the AST in place),
// optimizes with the given pass mask, runs it over input on the
// interpreter backend, and returns the counted op cost.
func interpCost(name, src string, mask ir.Pass, input []byte) (int64, error) {
	prog, err := minic.ParseAndCheckFile(name, src)
	if err != nil {
		return 0, err
	}
	if mask != 0 {
		ir.OptimizeSelected(prog, mask)
	}
	cost := &interp.CountingSink{}
	m := interp.New(prog, interp.Options{
		Stdin:  bytes.NewReader(input),
		Stdout: io.Discard,
		Cost:   cost,
	})
	if _, err := m.Run(); err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	return cost.Ops, nil
}
