package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/mr"
	"repro/internal/streaming"
	"repro/internal/workload"
)

// runVMReport measures every built-in benchmark's map stage on both
// execution cores — the register-bytecode VM (default) and the AST
// tree-walker (-novm) — and prints the per-benchmark speedup table that
// EXPERIMENTS.md records. The map stage is pure interpretation (one
// sequential pass over the whole input, no cluster simulation around it),
// so the ratio isolates the cost of executing MiniC itself.
func runVMReport(w io.Writer, seed uint64, inputKB int) error {
	fmt.Fprintf(w, "%-4s %-18s %14s %14s %9s\n", "code", "benchmark", "walker ns/op", "vm ns/op", "speedup")
	for _, b := range workload.All() {
		input := b.Gen(seed, inputKB<<10)
		vmJob := b.JobFor(1)
		walkJob := b.JobFor(1)
		walkJob.DisableVM = true
		vm, err := mr.CompileJob(vmJob)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Code, err)
		}
		walk, err := mr.CompileJob(walkJob)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Code, err)
		}
		walkNs, err := timeFilter(walk.MapF, input)
		if err != nil {
			return fmt.Errorf("%s: tree-walker: %w", b.Code, err)
		}
		vmNs, err := timeFilter(vm.MapF, input)
		if err != nil {
			return fmt.Errorf("%s: vm: %w", b.Code, err)
		}
		fmt.Fprintf(w, "%-4s %-18s %14d %14d %8.2fx\n",
			b.Code, b.Name, walkNs, vmNs, float64(walkNs)/float64(vmNs))
	}
	return nil
}

// timeFilter runs one streaming filter over the input until at least
// minDuration has elapsed (after one warm-up pass) and returns ns per run.
func timeFilter(f *streaming.Filter, input []byte) (int64, error) {
	const minDuration = 300 * time.Millisecond
	if _, _, err := f.Run(input); err != nil {
		return 0, err
	}
	var runs int64
	start := time.Now()
	for time.Since(start) < minDuration {
		if _, _, err := f.Run(input); err != nil {
			return 0, err
		}
		runs++
	}
	return time.Since(start).Nanoseconds() / runs, nil
}
