// Command hdlint runs the HeteroDoop static-analysis suite over MiniC
// MapReduce programs: the directive verifier, dataflow checks, parallel
// legality, GPU safety on the translated kernel, and IO purity. The
// paper's translator trusts directives (§3.2: incorrect directives yield
// undefined behavior); hdlint makes those contracts checkable.
//
// Usage:
//
//	hdlint [file.c ...]        (reads stdin when no file is given)
//	hdlint -benchmarks         (lints the built-in Table-2 benchmark programs)
//	hdlint -codes              (prints the diagnostic catalog)
//
// Exit status: 2 if any error-severity diagnostic was reported, 1 for
// warnings, 0 when every input is clean (info-level findings are printed
// but do not affect the status).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/workload"
)

func main() {
	benchmarks := flag.Bool("benchmarks", false, "lint the built-in Table-2 benchmark programs")
	printCodes := flag.Bool("codes", false, "print the diagnostic catalog and exit")
	quiet := flag.Bool("q", false, "suppress per-file OK lines")
	flag.Parse()

	if *printCodes {
		fmt.Println("hdlint diagnostic catalog:")
		catalog := append([]analysis.CodeInfo(nil), compiler.LintCatalog()...)
		sort.Slice(catalog, func(i, j int) bool { return catalog[i].Code < catalog[j].Code })
		for _, c := range catalog {
			fmt.Printf("  %s  %-7s  %s\n", c.Code, c.Severity, c.Summary)
		}
		return
	}

	worst := analysis.SevInfo
	lint := func(name, src string) {
		diags := compiler.Lint(name, src)
		for _, d := range diags {
			fmt.Println(d.String())
		}
		if sev := analysis.MaxSeverity(diags); sev > worst {
			worst = sev
		}
		if analysis.Clean(diags) && !*quiet {
			fmt.Printf("%s: OK (%d finding(s) at info level)\n", name, len(diags))
		}
	}

	switch {
	case *benchmarks:
		for _, b := range workload.All() {
			stages := []struct{ suffix, src string }{
				{"map", b.Job.MapSrc},
				{"combine", b.Job.CombineSrc},
				{"reduce", b.Job.ReduceSrc},
			}
			for _, st := range stages {
				if st.src == "" {
					continue
				}
				lint(fmt.Sprintf("%s-%s.c", b.Code, st.suffix), st.src)
			}
		}
	case flag.NArg() >= 1:
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			lint(path, string(data))
		}
	default:
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		lint("<stdin>", string(data))
	}

	switch worst {
	case analysis.SevError:
		os.Exit(2)
	case analysis.SevWarning:
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hdlint:", err)
	os.Exit(1)
}
