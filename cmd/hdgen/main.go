// Command hdgen reproduces the conformance harness's generated MiniC
// programs outside `go test`: every seed fully determines a program and
// its input, so a failing seed from internal/testkit can be inspected and
// re-checked standalone.
//
// Usage:
//
//	hdgen -seed 17            print the generated program and its input
//	hdgen -seed 17 -check     run the differential comparison for the seed
//	hdgen -from 0 -to 220 -check    sweep a seed range (the CI corpus)
//
// Exit status: 1 if any checked seed fails compilation, linting, or
// backend agreement; 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/testkit"
)

func main() {
	seed := flag.Uint64("seed", 0, "program seed to generate")
	check := flag.Bool("check", false, "run the differential comparison instead of printing")
	from := flag.Uint64("from", 0, "first seed of a -check sweep (with -to)")
	to := flag.Uint64("to", 0, "one past the last seed of a -check sweep")
	flag.Parse()

	if *to > *from {
		failed := 0
		for s := *from; s < *to; s++ {
			if !checkSeed(s, true) {
				failed++
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "hdgen: %d/%d seeds failed\n", failed, *to-*from)
			os.Exit(1)
		}
		fmt.Printf("hdgen: %d seeds OK\n", *to-*from)
		return
	}

	if !*check {
		p := testkit.Generate(*seed)
		fmt.Printf("// seed %d  name %s  reducers %d\n", p.Seed, p.Name, p.Reducers)
		fmt.Printf("// --- mapper ---\n%s\n", p.MapSrc)
		if p.CombineSrc != "" {
			fmt.Printf("// --- combiner ---\n%s\n", p.CombineSrc)
		}
		if p.ReduceSrc != "" {
			fmt.Printf("// --- reducer ---\n%s\n", p.ReduceSrc)
		}
		fmt.Printf("// --- input (%d bytes) ---\n%s", len(p.Input), p.Input)
		return
	}
	if !checkSeed(*seed, false) {
		os.Exit(1)
	}
}

// checkSeed runs one seed through compile, lint, and the three backends.
func checkSeed(seed uint64, brief bool) bool {
	p := testkit.Generate(seed)
	cj, err := testkit.Compile(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seed %d: compile: %v\n", seed, err)
		return false
	}
	if bad := testkit.Lint(p); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "seed %d: %d lint findings (first: %s)\n", seed, len(bad), bad[0].Message)
		return false
	}
	res, err := testkit.RunDifferentialCompiled(cj, p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seed %d: %v\n", seed, err)
		return false
	}
	if !res.Agree() {
		fmt.Fprintf(os.Stderr, "seed %d: backends disagree\n", seed)
		if !brief {
			fmt.Fprintf(os.Stderr, "--- sequential ---\n%s--- streaming ---\n%s--- gpu ---\n%s",
				res.Sequential, res.Streaming, res.GPU)
		}
		return false
	}
	if !brief {
		fmt.Printf("seed %d: OK (%d output bytes, %d reducers)\n", seed, len(res.Sequential), p.Reducers)
	}
	return true
}
