// Command hdcc is the HeteroDoop source-to-source compiler CLI: it reads
// a MiniC program annotated with `#pragma mapreduce` directives and prints
// the generated CUDA-flavoured kernel, the variable placement plan, and
// any privatization warnings — the front half of the paper's Figure 2.
//
// Usage:
//
//	hdcc [-plan] [-lint] [file.c]   (reads stdin when no file is given)
//	hdcc -demo                      (compiles the paper's Listing 1 wordcount)
//	hdcc -dump-bytecode file.c      (prints the register-bytecode disassembly)
//
// With -lint, the static-analysis suite runs alongside compilation and its
// diagnostics print to stderr; error-severity findings exit 2 (the kernel
// is still printed — analysis never changes compiler output).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/compiler"
	"repro/internal/workload"
)

func main() {
	plan := flag.Bool("plan", false, "print the variable classification plan")
	demo := flag.Bool("demo", false, "compile the built-in wordcount mapper (paper Listing 1)")
	lint := flag.Bool("lint", false, "run the static-analysis suite and print diagnostics to stderr")
	dumpBC := flag.Bool("dump-bytecode", false, "print the register-bytecode disassembly of the host program and kernel fragments instead of CUDA")
	flag.Parse()

	var src, file string
	switch {
	case *demo:
		src, file = workload.WordcountMap, "wordcount-map.c"
	case flag.NArg() >= 1:
		file = flag.Arg(0)
		data, err := os.ReadFile(file)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		file = "<stdin>"
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	compiled, err := compiler.CompileOpts(src, compiler.Options{Analyze: *lint, File: file})
	if err != nil {
		fatal(err)
	}
	if *dumpBC {
		dumpBytecode(compiled)
		return
	}
	fmt.Print(compiled.CUDA)
	if *plan {
		fmt.Println("\n// Variable classification (Algorithm 1):")
		type entry struct {
			name  string
			class compiler.VarClass
		}
		var entries []entry
		for sym, cls := range compiled.Kernel.Plan {
			entries = append(entries, entry{sym.Name, cls})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
		for _, e := range entries {
			fmt.Printf("//   %-16s %s\n", e.name, e.class)
		}
	}
	for _, w := range compiled.Kernel.Warnings {
		fmt.Fprintf(os.Stderr, "hdcc: warning: %s\n", w)
	}
	if *lint {
		for _, d := range compiled.Diagnostics {
			fmt.Fprintln(os.Stderr, d.String())
		}
		if analysis.HasErrors(compiled.Diagnostics) {
			os.Exit(2)
		}
	}
}

// dumpBytecode prints the register-bytecode disassembly of everything the
// compiler lowered: the host program and the GPU kernel fragments.
func dumpBytecode(compiled *compiler.Compiled) {
	sections := []struct {
		title string
		prog  *bytecode.Program
	}{
		{"host program", compiled.VM},
		{"mapper kernel condition", compiled.KernelCond},
		{"mapper kernel body", compiled.KernelBody},
		{"combiner kernel region", compiled.KernelRegion},
	}
	for _, s := range sections {
		if s.prog == nil {
			continue
		}
		fmt.Printf("== %s ==\n", s.title)
		fmt.Print(bytecode.Disassemble(s.prog))
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hdcc:", err)
	os.Exit(1)
}
