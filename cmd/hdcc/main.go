// Command hdcc is the HeteroDoop source-to-source compiler CLI: it reads
// a MiniC program annotated with `#pragma mapreduce` directives and prints
// the generated CUDA-flavoured kernel, the variable placement plan, and
// any privatization warnings — the front half of the paper's Figure 2.
//
// Usage:
//
//	hdcc [-plan] [file.c]      (reads stdin when no file is given)
//	hdcc -demo                 (compiles the paper's Listing 1 wordcount)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/compiler"
	"repro/internal/workload"
)

func main() {
	plan := flag.Bool("plan", false, "print the variable classification plan")
	demo := flag.Bool("demo", false, "compile the built-in wordcount mapper (paper Listing 1)")
	flag.Parse()

	var src string
	switch {
	case *demo:
		src = workload.WordcountMap
	case flag.NArg() >= 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	compiled, err := compiler.Compile(src)
	if err != nil {
		fatal(err)
	}
	fmt.Print(compiled.CUDA)
	if *plan {
		fmt.Println("\n// Variable classification (Algorithm 1):")
		type entry struct {
			name  string
			class compiler.VarClass
		}
		var entries []entry
		for sym, cls := range compiled.Kernel.Plan {
			entries = append(entries, entry{sym.Name, cls})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
		for _, e := range entries {
			fmt.Printf("//   %-16s %s\n", e.name, e.class)
		}
	}
	for _, w := range compiled.Kernel.Warnings {
		fmt.Fprintf(os.Stderr, "hdcc: warning: %s\n", w)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hdcc:", err)
	os.Exit(1)
}
