// Command heterodoop runs one of the paper's benchmarks end-to-end on the
// simulated CPU+GPU cluster: it generates a synthetic input, compiles the
// directive-annotated sources for both targets, executes the job
// functionally under the chosen scheduler, and reports virtual-time stats
// plus a sample of the real output.
//
// Usage:
//
//	heterodoop -bench WC -sched tail -input-kb 64
//	heterodoop -bench BS -sched cpu        (baseline Hadoop)
//	heterodoop -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "WC", "benchmark code (GR HS WC HR LR KM CL BS)")
	sched := flag.String("sched", "tail", "scheduler: cpu | gpufirst | tail")
	gpus := flag.Int("gpus", 1, "GPUs per node")
	inputKB := flag.Int("input-kb", 64, "synthetic input size in KB")
	slaves := flag.Int("slaves", 8, "slave nodes in the simulated cluster")
	blockKB := flag.Int("block-kb", 4, "scaled HDFS block size in KB")
	seed := flag.Uint64("seed", 42, "input generator seed")
	failRate := flag.Float64("fail", 0, "GPU task failure injection rate")
	faultSpec := flag.String("faults", "", `fault plan, e.g. "gpurate=0.2; crash(node=1,at=0.01,restart=0.02); corrupt(task=0,attempt=0)" (see faults.Parse)`)
	skipBad := flag.Bool("skip-bad-records", false, "drop poisoned input records instead of failing the job")
	maxSkipped := flag.Int("max-skipped", 0, "job-wide cap on skipped bad records (0 = engine default)")
	outLines := flag.Int("out", 10, "output lines to print")
	list := flag.Bool("list", false, "list benchmarks and exit")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
	metricsPath := flag.String("metrics", "", "write a Prometheus-style metrics dump to this file")
	novm := flag.Bool("novm", false, "disable the register-bytecode VM and interpret the AST (tree-walker)")
	hdprof := flag.Bool("hdprof", false, "profile the run's wall-clock cost and print the hot-path report")
	profTop := flag.Int("prof-top", 15, "rows in the -hdprof hot-path table")
	profFolded := flag.String("prof-folded", "", "write -hdprof folded-stack flamegraph lines to this file")
	workers := flag.Int("workers", runtime.NumCPU(), "host worker-pool size for the run's task work; 1 = serial, results are byte-identical for every value")
	flag.Parse()

	if *list {
		for _, b := range workload.All() {
			comb := "no combiner"
			if b.HasCombiner {
				comb = "combiner"
			}
			fmt.Printf("%-3s %-18s %-8s %s\n", b.Code, b.Name, b.Nature, comb)
		}
		return
	}

	b := workload.ByCode(strings.ToUpper(*bench))
	if b == nil {
		fatal(fmt.Errorf("unknown benchmark %q (use -list)", *bench))
	}
	var scheduler mr.SchedulerKind
	switch strings.ToLower(*sched) {
	case "cpu", "cpuonly":
		scheduler = mr.CPUOnly
	case "gpufirst", "gpu-first":
		scheduler = mr.GPUFirst
	case "tail":
		scheduler = mr.TailSched
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *sched))
	}

	var prof *perf.Profiler
	if *hdprof || *profFolded != "" {
		prof = perf.New()
	}
	prog := b.JobFor(1)
	job, err := core.CompileJobProfiled(core.JobSources{
		Name: prog.Name, Map: prog.MapSrc, Combine: prog.CombineSrc,
		Reduce: prog.ReduceSrc, Reducers: prog.NumReducers,
		DisableVM: *novm,
	}, prof)
	if err != nil {
		fatal(err)
	}

	setup := cluster.Cluster1()
	setup.Slaves = *slaves
	setup.HDFS.DataNodes = *slaves
	setup.HDFS.BlockSize = int64(*blockKB) << 10
	if setup.HDFS.Replication > *slaves {
		setup.HDFS.Replication = *slaves
	}

	var rec *obs.Recorder
	if *tracePath != "" || *metricsPath != "" {
		rec = obs.NewRecorder()
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		plan, err = faults.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
	}
	input := b.Gen(*seed, *inputKB<<10)
	res, err := core.Run(job, input, core.RunOptions{
		Setup: &setup, Scheduler: scheduler, GPUs: *gpus,
		GPUFailureRate: *failRate, Faults: plan, Seed: *seed, Obs: rec,
		SkipBadRecords: *skipBad, MaxSkippedRecords: *maxSkipped,
		Profile: prof, Workers: *workers,
	})
	if err != nil {
		fatal(err)
	}

	s := res.Stats
	fmt.Printf("benchmark       : %s (%s, %s)\n", b.Name, b.Code, b.Nature)
	fmt.Printf("scheduler       : %s, %d GPU(s)/node, %d slaves\n", scheduler, *gpus, *slaves)
	fmt.Printf("input           : %d KB -> %d map tasks, %d reducers\n",
		len(input)>>10, s.MapsOnCPU+s.MapsOnGPU, prog.NumReducers)
	fmt.Printf("makespan        : %.6f s (virtual time)\n", s.Makespan)
	fmt.Printf("map placement   : %d on CPU, %d on GPU (%d data-local, %d tail-forced)\n",
		s.MapsOnCPU, s.MapsOnGPU, s.DataLocalMaps, s.ForcedGPUTasks)
	if s.MapTimeCPU > 0 && s.MapTimeGPU > 0 {
		fmt.Printf("task times      : CPU %.6fs, GPU %.6fs (%.1fx)\n",
			s.MapTimeCPU, s.MapTimeGPU, s.MapTimeCPU/s.MapTimeGPU)
	}
	if s.Retries > 0 {
		fmt.Printf("fault tolerance : %d failed GPU attempts rescheduled\n", s.Retries)
	}
	if s.FailedAttempts > 0 || s.NodesLost > 0 || s.LostAttempts > 0 {
		fmt.Printf("faults          : %d attempts failed, %d lost to dead nodes, %d GPU->CPU fallbacks\n",
			s.FailedAttempts, s.LostAttempts, s.GPUFallbacks)
		fmt.Printf("recovery        : %d nodes lost, %d map outputs re-executed, %d reduces restarted, %d blacklists\n",
			s.NodesLost, s.MapsReexecuted, s.ReducesRestarted, s.NodeBlacklists)
	}
	if s.FetchFailures > 0 || s.CorruptPartitions > 0 || s.RecordsSkipped > 0 {
		fmt.Printf("data integrity  : %d fetch failures (%d corrupt partitions), %d refetches, %d outputs lost\n",
			s.FetchFailures, s.CorruptPartitions, s.Refetches, s.MapOutputsLost)
	}
	if s.RecordsSkipped > 0 {
		fmt.Printf("bad records     : %d poisoned records skipped\n", s.RecordsSkipped)
	}
	fmt.Printf("phases          : map phase ended %.6fs, shuffle residual %.6fs\n",
		s.MapPhaseEnd, s.ShuffleResidualSec)
	if s.GPUQueuePeak > 0 {
		fmt.Printf("gpu queue       : peak depth %d, total wait %.6fs\n",
			s.GPUQueuePeak, s.GPUQueueWaitSec)
	}
	fmt.Printf("output          : %d records\n", len(res.Output))
	lines := strings.Split(strings.TrimSpace(res.TextOutput()), "\n")
	for i, line := range lines {
		if i >= *outLines {
			fmt.Printf("  ... %d more\n", len(lines)-i)
			break
		}
		fmt.Printf("  %s\n", line)
	}
	if prof != nil {
		snap := prof.Snapshot()
		if *hdprof {
			fmt.Println()
			snap.WriteTable(os.Stdout, *profTop)
		}
		if *profFolded != "" {
			f, err := os.Create(*profFolded)
			if err != nil {
				fatal(err)
			}
			if err := snap.WriteFolded(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		if rec != nil {
			rec.Metrics().RecordCostProfile(snap)
		}
	}
	if err := writeObs(rec, *tracePath, *metricsPath); err != nil {
		fatal(err)
	}
	if *tracePath != "" {
		fmt.Printf("trace           : %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
	}
	if *metricsPath != "" {
		fmt.Printf("metrics         : %s\n", *metricsPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heterodoop:", err)
	os.Exit(1)
}

// writeObs dumps the recorder's trace and metrics to the requested files.
func writeObs(rec *obs.Recorder, tracePath, metricsPath string) error {
	if rec == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.Tracer().WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := rec.Metrics().WriteProm(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
